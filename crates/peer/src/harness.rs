//! The deterministic simulation driver: a population of sans-IO
//! [`PeerNode`]s over the `mqp-net` discrete-event simulator. Every
//! experiment (EXPERIMENTS.md) runs through this.
//!
//! The harness owns no protocol logic — parsing, forwarding, acking,
//! retrying, and completing all live in [`PeerNode`] (DESIGN.md §8).
//! What remains here is pure driving:
//!
//! * move encoded wire frames through [`SimNet`], charging each the
//!   logical byte count ([`crate::wire::charge`]);
//! * turn [`Effect::SetTimer`] into [`SimNet::schedule`]d ticks;
//! * short-circuit [`Effect::Ack`] — in the simulator, delivery *is*
//!   the acknowledgement, exactly as the pre-sans-IO harness disarmed
//!   watches the instant a tracked forward arrived;
//! * on [`Effect::Complete`], collect the outcome (deduplicated by
//!   query id) and broadcast `mark_done`, reproducing the legacy
//!   global pending/in-flight maps: a completed query can never re-arm
//!   retries anywhere, and at most one watch per query is live at a
//!   time (arming a watch cancels the previous holder's).
//!
//! The omniscient parts (free acks, global cancellation) are
//! deliberately *driver* behavior: they model an idealized transport
//! under which the golden traces were recorded, and stay
//! byte-identical across the sans-IO refactor. The threaded cluster
//! (`crate::cluster`) drives the identical nodes with none of that
//! omniscience — acks are real frames and completion knowledge stays
//! local.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mqp_catalog::{CatalogEntry, ServerId};
use mqp_core::{QueryId, QueryOutcome};
use mqp_net::{FaultPlan, NodeId, SimNet, Topology};

use crate::node::{Directory, Effect, PeerNode};
use crate::peer::Peer;
use crate::wire::{self, Frame};

pub use crate::node::RetryPolicy;

/// What travels through the simulated network: encoded wire frames,
/// plus local retry-timer ticks (never on the wire; scheduled through
/// [`SimNet::schedule`] at the watching node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimMsg {
    /// An encoded wire frame (see [`crate::wire`]).
    Wire(Vec<u8>),
    /// A local timer tick: the receiving node runs
    /// [`PeerNode::on_tick`].
    Tick,
}

/// How a lazy harness builds the peer for a node the first time it is
/// touched (submitted at, or delivered a message).
pub type PeerFactory = Box<dyn FnMut(NodeId) -> Peer>;

/// A population of peers on a simulated network.
///
/// Peers materialize lazily when built with [`SimHarness::lazy`]: the
/// harness allocates one pointer-sized slot per node, and a node's
/// [`PeerNode`] (store, catalog, processor) is constructed by the
/// factory the first time the node acts. World setup for a 100k-peer
/// experiment is then O(nodes that actually participate), not O(world).
/// [`SimHarness::new`] materializes everything up front, preserving the
/// original eager behavior exactly.
pub struct SimHarness {
    /// The network (exposed for failure injection and stats).
    pub net: SimNet<SimMsg>,
    nodes: Vec<Option<Box<PeerNode>>>,
    /// Materialized node ids, in materialization order: the broadcast
    /// set for `mark_done` and config pushes.
    live: Vec<NodeId>,
    factory: Option<PeerFactory>,
    directory: Arc<Directory>,
    pending: HashSet<QueryId>,
    completed: Vec<QueryOutcome>,
    next_qid: u64,
    /// When true, a completed query teaches the client's route cache
    /// which server finished it (§3.4 caching).
    pub cache_learning: bool,
    /// Timeout/retry policy; `None` (the default) preserves the
    /// fire-and-forget behavior where a lost MQP strands its query.
    pub retry: Option<RetryPolicy>,
    /// Which node holds the (single) live watch per query — the legacy
    /// semantics the golden traces were recorded under.
    watch_holder: HashMap<QueryId, NodeId>,
}

impl SimHarness {
    /// Builds a harness; peer `i` sits at network node `i`.
    pub fn new(topology: Topology, peers: Vec<Peer>) -> Self {
        assert_eq!(
            topology.len(),
            peers.len(),
            "topology size must match peer count"
        );
        let directory = Arc::new(Directory::new(
            peers.iter().map(|p| p.id().clone()).collect(),
        ));
        let nodes: Vec<Option<Box<PeerNode>>> = peers
            .into_iter()
            .enumerate()
            .map(|(i, p)| Some(Box::new(PeerNode::new(i, p, Arc::clone(&directory)))))
            .collect();
        let live = (0..nodes.len()).collect();
        SimHarness {
            net: SimNet::new(topology),
            nodes,
            live,
            factory: None,
            directory,
            pending: HashSet::new(),
            completed: Vec::new(),
            next_qid: 0,
            cache_learning: false,
            retry: None,
            watch_holder: HashMap::new(),
        }
    }

    /// Builds a lazy harness: no peer exists until its node first acts.
    /// The directory supplies every node's id up front (names are
    /// addressing configuration, not state); `factory` builds node
    /// `i`'s peer on first touch and must produce the id
    /// `directory.id_of(i)`.
    pub fn lazy(
        topology: Topology,
        directory: Directory,
        factory: impl FnMut(NodeId) -> Peer + 'static,
    ) -> Self {
        assert_eq!(
            topology.len(),
            directory.len(),
            "topology size must match directory size"
        );
        let n = directory.len();
        SimHarness {
            net: SimNet::new(topology),
            nodes: (0..n).map(|_| None).collect(),
            live: Vec::new(),
            factory: Some(Box::new(factory)),
            directory: Arc::new(directory),
            pending: HashSet::new(),
            completed: Vec::new(),
            next_qid: 0,
            cache_learning: false,
            retry: None,
            watch_holder: HashMap::new(),
        }
    }

    /// Materializes (if needed) and returns the protocol node at `node`.
    fn ensure(&mut self, node: NodeId) -> &mut PeerNode {
        if self.nodes[node].is_none() {
            let factory = self
                .factory
                .as_mut()
                .expect("node not materialized and no factory installed");
            let peer = factory(node);
            debug_assert_eq!(
                *peer.id(),
                self.directory.id_of(node),
                "factory produced a peer whose id disagrees with the directory"
            );
            let mut pn = Box::new(PeerNode::new(node, peer, Arc::clone(&self.directory)));
            pn.set_retry(self.retry);
            pn.set_cache_learning(self.cache_learning);
            self.nodes[node] = Some(pn);
            self.live.push(node);
        }
        self.nodes[node].as_mut().expect("just materialized")
    }

    /// Number of peers actually constructed so far (equals [`len`] for
    /// eager harnesses).
    ///
    /// [`len`]: SimHarness::len
    pub fn materialized(&self) -> usize {
        self.live.len()
    }

    /// Installs a fault plan on the underlying network; returns `self`
    /// for chaining.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.net.set_fault_plan(plan);
        self
    }

    /// Installs a retry policy; returns `self` for chaining.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Node id of a peer.
    pub fn node_of(&self, id: &ServerId) -> Option<NodeId> {
        self.directory.node_of(id)
    }

    /// Peer by node id. Panics on a lazy harness if the node has not
    /// materialized yet — use [`SimHarness::peer_mut`] to force it.
    pub fn peer(&self, node: NodeId) -> &Peer {
        self.nodes[node]
            .as_ref()
            .expect("peer not materialized; touch it via peer_mut first")
            .peer()
    }

    /// Mutable peer by node id (materializes lazily).
    pub fn peer_mut(&mut self, node: NodeId) -> &mut Peer {
        self.ensure(node).peer_mut()
    }

    /// Protocol node by node id (driver-level access for tests and
    /// custom hosts). Panics on an unmaterialized lazy node.
    pub fn node(&self, node: NodeId) -> &PeerNode {
        self.nodes[node]
            .as_ref()
            .expect("node not materialized; touch it via peer_mut first")
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the harness has no peers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Pushes the public `retry`/`cache_learning` knobs into every
    /// node. Cheap; called at each submit/run so tests can flip the
    /// fields between calls, as they always could.
    fn sync_config(&mut self) {
        for n in self.nodes.iter_mut().flatten() {
            n.set_retry(self.retry);
            n.set_cache_learning(self.cache_learning);
        }
    }

    /// Sends a registration message (counted as network traffic); the
    /// receiving peer adds the entry to its catalog on delivery.
    pub fn send_registration(&mut self, from: NodeId, to: NodeId, entry: CatalogEntry) {
        let bytes = Frame::Register(entry).encode();
        let charge = wire::charge(&bytes);
        self.net.send(from, to, charge, SimMsg::Wire(bytes));
    }

    /// Pushes a policy rule set to `to` (hot reload; counted as network
    /// traffic, charged like a registration). The receiving peer
    /// installs the rules on delivery; envelopes already in flight keep
    /// their accounting.
    pub fn push_policy(&mut self, from: NodeId, to: NodeId, rules: mqp_core::RuleSet) {
        let bytes = Frame::Policy(rules).encode();
        let charge = wire::charge(&bytes);
        self.net.send(from, to, charge, SimMsg::Wire(bytes));
    }

    /// §3.3's complementary *pull* process: `index` asks every peer in
    /// `from` for its base entry; each reply is a registration message
    /// (all traffic counted). Returns how many entries were pulled.
    pub fn pull_registrations(&mut self, index: NodeId, from: &[NodeId]) -> usize {
        let mut pulled = 0;
        for &node in from {
            let entry = self.ensure(node).peer().base_entry();
            if entry.area.is_empty() {
                continue;
            }
            // The probe doubles as an introduction: the index server
            // announces it indexes the base server's area (so the base
            // peer learns a route), and the base server replies with
            // its entry.
            let intro =
                CatalogEntry::index(self.ensure(index).peer().id().clone(), entry.area.clone());
            self.send_registration(index, node, intro);
            self.send_registration(node, index, entry);
            pulled += 1;
        }
        pulled
    }

    /// Submits a query plan at `client`. If the plan is not already
    /// wrapped in `Display`, it is wrapped with a target addressing the
    /// client. Returns the query id.
    pub fn submit(&mut self, client: NodeId, plan: mqp_algebra::plan::Plan) -> QueryId {
        self.sync_config();
        let qid = QueryId::new(self.next_qid);
        self.next_qid += 1;
        self.pending.insert(qid);
        let now = self.net.now();
        let effects = self.ensure(client).submit(qid, plan, now);
        self.apply(client, effects);
        qid
    }

    /// Runs the network until quiescent (or `max_deliveries`). Returns
    /// the number of deliveries handled.
    pub fn run(&mut self, max_deliveries: usize) -> usize {
        self.sync_config();
        let mut handled = 0;
        while handled < max_deliveries {
            let Some(delivery) = self.net.step() else {
                break;
            };
            handled += 1;
            // Churn applied during this step drives the recovery state
            // machine (DESIGN.md §12): a schedule-downed peer crashes
            // (durable peers lose volatile state), a rejoining one
            // replays its journal and re-announces surviving bindings.
            // Volatile peers keep the legacy interface-outage semantics
            // (both calls are no-ops for them). Unmaterialized nodes
            // never acted, so there is nothing to crash or recover.
            for ev in self.net.drain_churn() {
                if self.nodes[ev.node].is_none() {
                    continue;
                }
                if ev.up {
                    let now = self.net.now();
                    let effects = self.ensure(ev.node).recover(now);
                    self.apply(ev.node, effects);
                } else {
                    self.ensure(ev.node).crash();
                }
            }
            let at = delivery.at;
            let to = delivery.to;
            let effects = match delivery.payload {
                SimMsg::Wire(bytes) => self.ensure(to).on_message(delivery.from, &bytes, at),
                SimMsg::Tick => self.ensure(to).on_tick(at),
            };
            self.apply(to, effects);
        }
        handled
    }

    /// Crashes the peer at `node` by hand: network interface down, and
    /// (for durable peers) volatile protocol state dropped with the
    /// journal's disk power-lost. The churn-schedule path does the same
    /// on a clock.
    pub fn crash_node(&mut self, node: NodeId) {
        self.net.fail(node);
        self.ensure(node).crash();
    }

    /// Restarts the peer at `node`: interface up, catalog recovered
    /// from its journal (prefix-consistent replay), surviving bindings
    /// re-announced as `rereg` frames.
    pub fn restart_node(&mut self, node: NodeId) {
        self.net.recover(node);
        let now = self.net.now();
        let effects = self.ensure(node).recover(now);
        self.apply(node, effects);
    }

    /// Executes a node's effects, in order (the send/schedule sequence
    /// determines event seq numbers and fault draws, so order is part
    /// of the determinism contract).
    fn apply(&mut self, node: NodeId, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, bytes } => {
                    let charge = wire::charge(&bytes);
                    self.net.send(node, to, charge, SimMsg::Wire(bytes));
                }
                Effect::SetTimer { qid, at } => {
                    // Legacy single-watch semantics: arming anywhere
                    // cancels the previous holder's watch.
                    if let Some(&holder) = self.watch_holder.get(&qid) {
                        if holder != node {
                            self.ensure(holder).cancel_watch(qid);
                        }
                    }
                    self.watch_holder.insert(qid, node);
                    let delay = at.saturating_sub(self.net.now());
                    self.net.schedule(node, delay, SimMsg::Tick);
                }
                Effect::Ack { to, qid } => {
                    // Delivery is the ack in the simulator: apply it
                    // directly, free of charge.
                    self.ensure(to).on_ack(node, qid);
                }
                Effect::Retried { .. } => {
                    self.net.stats_mut().retries += 1;
                }
                Effect::Register(_) | Effect::Recovered(_) => {}
                Effect::Complete(outcome) => {
                    let qid = outcome.qid;
                    self.watch_holder.remove(&qid);
                    // Completion is global knowledge here: no node may
                    // keep (or re-arm) a watch for a finished query.
                    // Unmaterialized nodes never acted, so they cannot
                    // hold a watch: broadcasting to the live set keeps
                    // this O(participants) in a lazy world.
                    for &i in &self.live {
                        self.nodes[i].as_mut().expect("live node").mark_done(qid);
                    }
                    if self.pending.remove(&qid) {
                        self.completed.push(outcome);
                    }
                }
            }
        }
    }

    /// Completed queries so far.
    pub fn completed(&self) -> &[QueryOutcome] {
        &self.completed
    }

    /// Takes the completed-query list, clearing it.
    pub fn take_completed(&mut self) -> Vec<QueryOutcome> {
        std::mem::take(&mut self.completed)
    }

    /// Queries still in flight.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_algebra::plan::Plan;
    use mqp_namespace::{Hierarchy, InterestArea, Namespace, Urn};
    use mqp_xml::parse;

    fn ns() -> Namespace {
        Namespace::new([
            Hierarchy::new("Location").with(["USA/OR/Portland", "USA/WA/Seattle"]),
            Hierarchy::new("Merchandise").with(["Music/CDs", "Furniture/Chairs"]),
        ])
    }

    fn pdx_cds() -> InterestArea {
        InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]])
    }

    /// A 4-peer world: client, meta-index, and two sellers.
    fn world() -> SimHarness {
        let client = Peer::new("client", ns()).with_default_route("meta");
        let mut meta = Peer::new("meta", ns());
        let mut s1 = Peer::new("seller-1", ns());
        s1.add_collection(
            "cds",
            pdx_cds(),
            [
                parse("<item><title>A</title><price>8</price></item>").unwrap(),
                parse("<item><title>B</title><price>12</price></item>").unwrap(),
            ],
        );
        let mut s2 = Peer::new("seller-2", ns());
        s2.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><title>C</title><price>9</price></item>").unwrap()],
        );
        // The meta-index knows both sellers.
        meta.catalog_mut().register(s1.base_entry());
        meta.catalog_mut().register(s2.base_entry());
        SimHarness::new(
            Topology::clustered(4, 2, 1_000, 50_000),
            vec![client, meta, s1, s2],
        )
    }

    #[test]
    fn end_to_end_interest_area_query() {
        let mut h = world();
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        let qid = h.submit(0, plan);
        h.run(1000);
        assert_eq!(h.pending_count(), 0);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert_eq!(q.qid, qid);
        assert!(q.failure.is_none(), "{:?}", q.failure);
        // Cheap CDs from both sellers.
        let mut titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
        titles.sort();
        assert_eq!(titles, ["A", "C"]);
        // Path: client → meta (bind) → seller → seller → client result.
        assert!(q.hops >= 3, "hops = {}", q.hops);
        assert!(q.latency_us > 0);
        assert!(q.mqp_bytes > 0);
    }

    #[test]
    fn unknown_area_gets_stuck() {
        let mut h = world();
        let nowhere = InterestArea::parse(&[&["France", "Cheese"]]);
        let plan = Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(nowhere)));
        h.submit(0, plan);
        h.run(1000);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        assert!(done[0].failure.is_some());
        assert!(done[0].items.is_empty());
    }

    #[test]
    fn cache_learning_shortens_second_query() {
        let mut h = world();
        h.cache_learning = true;
        let q = || {
            Plan::select(
                "price < 10",
                Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
            )
        };
        h.submit(0, q());
        h.run(1000);
        let first = h.take_completed().pop().unwrap();
        h.submit(0, q());
        h.run(1000);
        let second = h.take_completed().pop().unwrap();
        assert!(first.failure.is_none() && second.failure.is_none());
        // The client learned the completing server; the second query
        // skips ahead (strictly fewer or equal hops, and must not grow).
        assert!(
            second.hops <= first.hops,
            "{} > {}",
            second.hops,
            first.hops
        );
    }

    #[test]
    fn registration_messages_populate_catalogs() {
        let client = Peer::new("client", ns());
        let idx = Peer::new("idx", ns());
        let mut seller = Peer::new("seller", ns());
        seller.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><price>1</price></item>").unwrap()],
        );
        let entry = seller.base_entry();
        let mut h = SimHarness::new(Topology::uniform(3, 100), vec![client, idx, seller]);
        assert_eq!(h.peer(1).catalog().entries().len(), 0);
        h.send_registration(2, 1, entry);
        h.run(10);
        assert_eq!(h.peer(1).catalog().entries().len(), 1);
        assert!(h.net.stats().messages_delivered >= 1);
    }

    #[test]
    fn failed_server_leads_to_partial_or_stuck() {
        let mut h = world();
        // Kill seller-1 (node 2).
        h.net.fail(2);
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        h.submit(0, plan);
        h.run(1000);
        // The MQP died at the failed node: without a retry policy,
        // nothing completes and the query stays pending.
        assert_eq!(h.completed().len(), 0);
        assert_eq!(h.pending_count(), 1);
        assert!(h.net.stats().messages_dropped >= 1);
    }

    #[test]
    fn retry_detours_to_or_alternative_around_dead_server() {
        let mut h = world().with_retry(RetryPolicy::default());
        h.net.fail(2); // seller-1 is dead for the whole run
                       // Either seller alone satisfies the query (§4.2 Or).
        let plan = Plan::or([Plan::url("mqp://seller-1/"), Plan::url("mqp://seller-2/")]);
        h.submit(0, plan);
        h.run(10_000);
        assert_eq!(h.pending_count(), 0);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        // The forward to seller-1 timed out; the client reran routing
        // excluding it, landed on seller-2, which committed its own
        // alternative and completed.
        assert!(q.failure.is_none(), "{:?}", q.failure);
        assert_eq!(q.items.len(), 1);
        assert_eq!(q.items[0].field("title").as_deref(), Some("C"));
        assert!(
            q.retries >= 1,
            "expected a detour, got {} retries",
            q.retries
        );
        // Invariant 7: the detour is audit-clean.
        assert_eq!(q.audit_clean, Some(true));
        assert_eq!(h.net.stats().retries, q.retries);
    }

    #[test]
    fn retries_exhaust_into_failure_when_no_alternative_exists() {
        let mut h = world().with_retry(RetryPolicy {
            timeout_us: 200_000,
            max_retries: 2,
        });
        h.net.fail(2); // seller-1 holds data nothing else replicates
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        h.submit(0, plan);
        h.run(100_000);
        // The query no longer strands: it completes with an explicit
        // failure after the retry budget is spent.
        assert_eq!(h.pending_count(), 0);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert!(q.failure.as_deref().unwrap_or("").contains("retries"));
        assert!(q.retries >= 1);
    }

    #[test]
    fn retry_reaches_server_that_rejoins_mid_query() {
        use mqp_net::{ChurnEvent, FaultPlan};
        // Seller-1 is down from the start but rejoins at t = 300ms;
        // the retry loop keeps knocking and eventually gets through.
        let mut h = world()
            .with_retry(RetryPolicy {
                timeout_us: 250_000,
                max_retries: 5,
            })
            .with_fault_plan(FaultPlan::new(1).with_churn(vec![
                ChurnEvent {
                    at: 1,
                    node: 2,
                    up: false,
                },
                ChurnEvent {
                    at: 300_000,
                    node: 2,
                    up: true,
                },
            ]));
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        h.submit(0, plan);
        h.run(100_000);
        assert_eq!(h.pending_count(), 0);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert!(q.failure.is_none(), "{:?}", q.failure);
        let mut titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
        titles.sort();
        assert_eq!(titles, ["A", "C"]);
        assert!(q.retries >= 1);
        assert_eq!(q.audit_clean, Some(true));
    }
}

#[cfg(test)]
mod durable_tests {
    use super::*;
    use mqp_algebra::plan::Plan;
    use mqp_catalog::durable::{DurableCatalog, MemDisk, SharedDisk};
    use mqp_namespace::{Hierarchy, InterestArea, Namespace, Urn};
    use mqp_xml::parse;

    fn ns() -> Namespace {
        Namespace::new([
            Hierarchy::new("Location").with(["USA/OR/Portland"]),
            Hierarchy::new("Merchandise").with(["Music/CDs"]),
        ])
    }

    fn pdx_cds() -> InterestArea {
        InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]])
    }

    /// The 4-peer world with a *durable* seller-1 that also knows the
    /// meta-index, so a restarted seller has someone to re-announce to.
    fn durable_world() -> SimHarness {
        let client = Peer::new("client", ns()).with_default_route("meta");
        let mut meta = Peer::new("meta", ns());
        let mut s1 = Peer::new("seller-1", ns());
        s1.add_collection(
            "cds",
            pdx_cds(),
            [
                parse("<item><title>A</title><price>8</price></item>").unwrap(),
                parse("<item><title>B</title><price>12</price></item>").unwrap(),
            ],
        );
        s1.catalog_mut()
            .register(CatalogEntry::index("meta", pdx_cds()));
        s1.enable_durability(DurableCatalog::new(SharedDisk::new(MemDisk::new())));
        let mut s2 = Peer::new("seller-2", ns());
        s2.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><title>C</title><price>9</price></item>").unwrap()],
        );
        meta.catalog_mut().register(s1.base_entry());
        meta.catalog_mut().register(s2.base_entry());
        SimHarness::new(
            Topology::clustered(4, 2, 1_000, 50_000),
            vec![client, meta, s1, s2],
        )
    }

    fn cheap_cds() -> Plan {
        Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        )
    }

    fn titles(q: &QueryOutcome) -> Vec<String> {
        let mut t: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
        t.sort();
        t
    }

    #[test]
    fn durable_seller_recovers_catalog_and_reregisters_after_crash() {
        let mut h = durable_world();
        h.submit(0, cheap_cds());
        h.run(1_000);
        let first = h.take_completed().pop().expect("first query completes");
        assert!(first.failure.is_none(), "{:?}", first.failure);
        assert_eq!(titles(&first), ["A", "C"]);

        // Power loss at seller-1: the in-memory catalog is gone, only
        // the journal survives.
        h.crash_node(2);
        assert!(
            h.peer(2).catalog().entries().is_empty(),
            "crash must wipe the volatile catalog"
        );

        // Restart: prefix-consistent replay restores both the seller's
        // own base entry and its knowledge of the meta-index, and the
        // surviving bindings go back out as rereg frames (real,
        // counted traffic).
        let sent_before = h.net.stats().messages_sent;
        h.restart_node(2);
        let entries = h.peer(2).catalog().entries();
        assert!(entries.iter().any(|e| e.server.as_str() == "seller-1"));
        assert!(entries.iter().any(|e| e.server.as_str() == "meta"));
        assert!(
            h.net.stats().messages_sent > sent_before,
            "recovery must re-announce over the network"
        );
        h.run(100); // deliver the rereg frames (idempotent at meta)

        // The recovered peer serves again, audit-clean.
        h.submit(0, cheap_cds());
        h.run(1_000);
        let second = h.take_completed().pop().expect("second query completes");
        assert!(second.failure.is_none(), "{:?}", second.failure);
        assert_eq!(titles(&second), ["A", "C"]);
        assert_eq!(second.audit_clean, Some(true));
        assert!(
            h.net.stats().balances(h.net.in_flight()),
            "accounting identity must hold with rereg traffic: {:?}",
            h.net.stats()
        );
    }

    #[test]
    fn churn_schedule_drives_the_same_recovery_machine() {
        use mqp_net::{ChurnEvent, FaultPlan};
        // Seller-1 power-cycles on the fault plan's clock instead of by
        // hand; the run loop's churn drain must crash and recover it.
        let mut h = durable_world().with_fault_plan(FaultPlan::new(7).with_churn(vec![
            ChurnEvent {
                at: 200_000,
                node: 2,
                up: false,
            },
            ChurnEvent {
                at: 400_000,
                node: 2,
                up: true,
            },
        ]));
        h.submit(0, cheap_cds());
        h.run(1_000);
        let first = h.take_completed().pop().expect("pre-churn query");
        assert_eq!(titles(&first), ["A", "C"]);
        // Idle ticks to advance the clock through the churn window.
        while h.net.now() < 500_000 {
            h.net.schedule(0, 10_000, SimMsg::Tick);
            h.run(10);
        }
        let entries = h.peer(2).catalog().entries();
        assert!(
            entries.iter().any(|e| e.server.as_str() == "seller-1"),
            "rejoin must recover the journaled catalog: {entries:?}"
        );
        h.submit(0, cheap_cds());
        h.run(1_000);
        let second = h.take_completed().pop().expect("post-churn query");
        assert!(second.failure.is_none(), "{:?}", second.failure);
        assert_eq!(titles(&second), ["A", "C"]);
    }
}

#[cfg(test)]
mod lazy_tests {
    use super::*;
    use mqp_algebra::plan::Plan;
    use mqp_namespace::{Hierarchy, InterestArea, Namespace, Urn};
    use mqp_xml::parse;

    fn ns() -> Namespace {
        Namespace::new([
            Hierarchy::new("Location").with(["USA/OR/Portland"]),
            Hierarchy::new("Merchandise").with(["Music/CDs"]),
        ])
    }

    fn pdx_cds() -> InterestArea {
        InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]])
    }

    /// 2 named peers (client, idx) + 4 scheme-named sellers, built on
    /// demand. Only seller-0 is indexed, so sellers 1..4 never
    /// materialize.
    #[test]
    fn lazy_world_materializes_only_participants() {
        let shared_ns = Arc::new(ns());
        let dir = Directory::with_generated_tail(
            vec![ServerId::new("client"), ServerId::new("idx")],
            "seller-",
            4,
        );
        assert_eq!(dir.len(), 6);
        assert_eq!(dir.id_of(0), ServerId::new("client"));
        assert_eq!(dir.id_of(3), ServerId::new("seller-1"));
        assert_eq!(dir.node_of(&ServerId::new("seller-3")), Some(5));
        assert_eq!(dir.node_of(&ServerId::new("seller-4")), None);
        assert_eq!(dir.node_of(&ServerId::new("seller-01")), None);

        let mut h = SimHarness::lazy(Topology::uniform(6, 1_000), dir, move |node| match node {
            0 => Peer::new("client", Arc::clone(&shared_ns)).with_default_route("idx"),
            1 => {
                let mut idx = Peer::new("idx", Arc::clone(&shared_ns));
                idx.catalog_mut()
                    .register(CatalogEntry::base("seller-0", pdx_cds()));
                idx
            }
            n => {
                let mut s = Peer::new(format!("seller-{}", n - 2), Arc::clone(&shared_ns));
                s.add_collection(
                    "cds",
                    pdx_cds(),
                    [parse("<item><title>A</title><price>8</price></item>").unwrap()],
                );
                s
            }
        });
        assert_eq!(h.materialized(), 0);
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        h.submit(0, plan);
        h.run(1_000);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        assert!(done[0].failure.is_none(), "{:?}", done[0].failure);
        assert_eq!(done[0].items.len(), 1);
        // client + idx + seller-0 acted; sellers 1..4 were never built.
        assert_eq!(h.materialized(), 3);
        assert_eq!(h.len(), 6);
    }
}

#[cfg(test)]
mod pull_tests {
    use super::*;
    use crate::peer::Peer;
    use mqp_namespace::{Hierarchy, Namespace};
    use mqp_xml::parse;

    #[test]
    fn pull_registrations_harvests_base_entries() {
        let ns = Namespace::new([Hierarchy::new("L").with(["A/B"])]);
        let idx = Peer::new("idx", ns.clone());
        let mut s1 = Peer::new("s1", ns.clone());
        s1.add_collection(
            "c",
            mqp_namespace::InterestArea::parse(&[&["A/B"]]),
            [parse("<i/>").unwrap()],
        );
        let s2 = Peer::new("s2", ns.clone()); // empty: skipped
        let mut h = SimHarness::new(Topology::uniform(3, 100), vec![idx, s1, s2]);
        let pulled = h.pull_registrations(0, &[1, 2]);
        assert_eq!(pulled, 1);
        h.run(100);
        // The index learned the base entry; the base learned the index.
        assert_eq!(h.peer(0).catalog().entries().len(), 1);
        assert!(h
            .peer(1)
            .catalog()
            .entries()
            .iter()
            .any(|e| e.server.as_str() == "idx"));
        assert!(h.net.stats().messages_delivered >= 2);
    }
}
