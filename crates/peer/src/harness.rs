//! The simulation harness: a population of peers over `mqp-net`,
//! exchanging serialized MQP envelopes. Every experiment (EXPERIMENTS.md)
//! runs through this.

use std::collections::HashMap;

use mqp_catalog::{CatalogEntry, ServerId};
use mqp_core::{Action, Mqp, Outcome, VisitRecord};
use mqp_namespace::InterestArea;
use mqp_net::{FaultPlan, NodeId, SimNet, Topology};
use mqp_xml::Element;

use crate::peer::Peer;

/// Messages between peers.
#[derive(Debug, Clone)]
pub enum PeerMsg {
    /// A serialized MQP envelope in flight.
    Mqp(String),
    /// A completed result returning to the query's client.
    Result {
        /// Query id.
        qid: u64,
        /// Serialized result items.
        items: String,
    },
    /// Catalog registration (a base/index server announcing itself,
    /// §3.2/§3.3).
    Register(CatalogEntry),
    /// A local retry timer (never on the wire; scheduled through
    /// [`SimNet::schedule`] at the forwarding node).
    Timeout {
        /// Query whose forward is being watched.
        qid: u64,
        /// Token matching the forward attempt; stale tokens are
        /// ignored.
        token: u64,
    },
}

impl PeerMsg {
    /// Bytes charged to the network for this message.
    pub fn wire_bytes(&self) -> usize {
        match self {
            PeerMsg::Mqp(s) => s.len(),
            PeerMsg::Result { items, .. } => items.len() + 32,
            PeerMsg::Register(e) => {
                // Server id + encoded area + level/flags.
                e.server.as_str().len() + mqp_namespace::urn::encode_area(&e.area).len() + 16
            }
            // Timers are local events, never charged to the network.
            PeerMsg::Timeout { .. } => 0,
        }
    }
}

/// Timeout/retry knobs for in-flight MQP and result hops. With a policy
/// installed, every forward with a known query id arms a timer at the
/// sending node; if neither the next hop nor the client makes progress
/// before it fires, the sender re-routes around the presumed-dead hop
/// (recording the detour in provenance, DESIGN.md invariant 7) and
/// retries, up to `max_retries` times.
///
/// The watch lives at the sending peer: if *that* peer crashes while
/// its only copy is in flight, the timer dies with it and the query
/// strands (DESIGN.md §6, liveness caveat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long a forward may stay unacknowledged (µs).
    pub timeout_us: u64,
    /// Retries per forward before the query is failed.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            // Comfortably above the widest-area round trip the built-in
            // topologies produce, including jitter.
            timeout_us: 500_000,
            max_retries: 3,
        }
    }
}

/// One unacknowledged forward (MQP or result hop).
struct InFlight {
    token: u64,
    from: NodeId,
    to: NodeId,
    msg: PeerMsg,
    attempts: u32,
}

/// Per-query accounting.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Node that submitted the query.
    pub client: NodeId,
    /// Simulated submission time (µs).
    pub submitted_at: u64,
    /// MQP hops so far (server-to-server forwards, including the final
    /// result delivery).
    pub hops: u64,
    /// Total MQP bytes shipped.
    pub mqp_bytes: u64,
    /// The interest area of the query's first interest-area URN, if
    /// any (used for cache learning).
    pub area: Option<InterestArea>,
    /// The index/meta server that bound the query's URN — what §3.4's
    /// route caches remember (filled at completion from provenance).
    pub bound_by: Option<ServerId>,
    /// Timeout-driven retries this query needed.
    pub retries: u64,
    /// Provenance audit at completion: `Some(true)` when every source
    /// in the original plan is accounted for (§5.1); `None` when the
    /// query failed before the audit could run.
    pub audit_clean: Option<bool>,
}

/// Final outcome of one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Query id (from [`SimHarness::submit`]).
    pub qid: u64,
    /// Result items (empty when stuck).
    pub items: Vec<Element>,
    /// `None` on success; the reason when the query got stuck.
    pub failure: Option<String>,
    /// Completion time minus submission time (µs).
    pub latency_us: u64,
    /// MQP hops.
    pub hops: u64,
    /// Total MQP bytes shipped for this query.
    pub mqp_bytes: u64,
    /// Timeout-driven retries (detours) this query needed.
    pub retries: u64,
    /// §5.1 provenance audit of the completed envelope: `Some(true)`
    /// when every original source was bound/resolved/evaluated by some
    /// visited server — retry detours included (invariant 7).
    pub audit_clean: Option<bool>,
}

/// A population of peers on a simulated network.
pub struct SimHarness {
    /// The network (exposed for failure injection and stats).
    pub net: SimNet<PeerMsg>,
    peers: Vec<Peer>,
    index_of: HashMap<ServerId, NodeId>,
    pending: HashMap<u64, QueryStats>,
    completed: Vec<QueryOutcome>,
    next_qid: u64,
    /// When true, a completed query teaches the client's route cache
    /// which server finished it (§3.4 caching).
    pub cache_learning: bool,
    /// Timeout/retry policy; `None` (the default) preserves the
    /// fire-and-forget behavior where a lost MQP strands its query.
    pub retry: Option<RetryPolicy>,
    /// Unacknowledged forwards by query id.
    inflight: HashMap<u64, InFlight>,
    next_token: u64,
}

impl SimHarness {
    /// Builds a harness; peer `i` sits at network node `i`.
    pub fn new(topology: Topology, peers: Vec<Peer>) -> Self {
        assert_eq!(
            topology.len(),
            peers.len(),
            "topology size must match peer count"
        );
        let index_of = peers
            .iter()
            .enumerate()
            .map(|(i, p)| (p.id().clone(), i))
            .collect();
        SimHarness {
            net: SimNet::new(topology),
            peers,
            index_of,
            pending: HashMap::new(),
            completed: Vec::new(),
            next_qid: 0,
            cache_learning: false,
            retry: None,
            inflight: HashMap::new(),
            next_token: 0,
        }
    }

    /// Installs a fault plan on the underlying network; returns `self`
    /// for chaining.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.net.set_fault_plan(plan);
        self
    }

    /// Installs a retry policy; returns `self` for chaining.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Node id of a peer.
    pub fn node_of(&self, id: &ServerId) -> Option<NodeId> {
        self.index_of.get(id).copied()
    }

    /// Peer by node id.
    pub fn peer(&self, node: NodeId) -> &Peer {
        &self.peers[node]
    }

    /// Mutable peer by node id.
    pub fn peer_mut(&mut self, node: NodeId) -> &mut Peer {
        &mut self.peers[node]
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the harness has no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Sends a registration message (counted as network traffic); the
    /// receiving peer adds the entry to its catalog on delivery.
    pub fn send_registration(&mut self, from: NodeId, to: NodeId, entry: CatalogEntry) {
        let msg = PeerMsg::Register(entry);
        let bytes = msg.wire_bytes();
        self.net.send(from, to, bytes, msg);
    }

    /// §3.3's complementary *pull* process: `index` asks every peer in
    /// `from` for its base entry; each reply is a registration message
    /// (all traffic counted). Returns how many entries were pulled.
    pub fn pull_registrations(&mut self, index: NodeId, from: &[NodeId]) -> usize {
        let mut pulled = 0;
        for &node in from {
            let entry = self.peers[node].base_entry();
            if entry.area.is_empty() {
                continue;
            }
            // The probe doubles as an introduction: the index server
            // announces it indexes the base server's area (so the base
            // peer learns a route), and the base server replies with
            // its entry.
            let intro = CatalogEntry::index(self.peers[index].id().clone(), entry.area.clone());
            self.send_registration(index, node, intro);
            self.send_registration(node, index, entry);
            pulled += 1;
        }
        pulled
    }

    /// Submits a query plan at `client`. If the plan is not already
    /// wrapped in `Display`, it is wrapped with a target addressing the
    /// client. Returns the query id.
    pub fn submit(&mut self, client: NodeId, plan: mqp_algebra::plan::Plan) -> u64 {
        let qid = self.next_qid;
        self.next_qid += 1;
        let target = format!("{}#{}", self.peers[client].id(), qid);
        let plan = match plan {
            mqp_algebra::plan::Plan::Display { input, .. } => {
                mqp_algebra::plan::Plan::display(target, *input)
            }
            other => mqp_algebra::plan::Plan::display(target, other),
        };
        // Track the query's interest area for cache learning.
        let area = plan.urns().iter().find_map(|u| u.urn.as_area().cloned());
        let mqp = Mqp::new(plan);
        let wire = mqp.to_wire();
        let bytes = wire.len();
        self.pending.insert(
            qid,
            QueryStats {
                client,
                submitted_at: self.net.now(),
                hops: 0,
                mqp_bytes: bytes as u64,
                area,
                bound_by: None,
                retries: 0,
                audit_clean: None,
            },
        );
        // Self-delivery starts processing at the client peer itself.
        self.net.send(client, client, bytes, PeerMsg::Mqp(wire));
        qid
    }

    /// Runs the network until quiescent (or `max_deliveries`). Returns
    /// the number of deliveries handled.
    pub fn run(&mut self, max_deliveries: usize) -> usize {
        let mut handled = 0;
        while handled < max_deliveries {
            let Some(delivery) = self.net.step() else {
                break;
            };
            handled += 1;
            let at = delivery.at;
            match delivery.payload {
                PeerMsg::Register(entry) => {
                    self.peers[delivery.to].catalog_mut().register(entry);
                }
                PeerMsg::Result { qid, items } => {
                    self.finish_result(qid, &items, at);
                }
                PeerMsg::Mqp(wire) => {
                    self.handle_mqp(delivery.to, &wire, at);
                }
                PeerMsg::Timeout { qid, token } => {
                    self.handle_timeout(qid, token, at);
                }
            }
        }
        handled
    }

    /// Sends `msg` and, when a retry policy is active and the query id
    /// refers to a still-pending query, arms a timeout timer at the
    /// sending node. (Completed queries — e.g. a duplicate delivery
    /// re-completing at a server — send untracked, so they can never
    /// re-arm retries.)
    fn send_tracked(
        &mut self,
        qid: Option<u64>,
        from: NodeId,
        to: NodeId,
        msg: PeerMsg,
        attempts: u32,
    ) {
        let bytes = msg.wire_bytes();
        let qid = qid.filter(|q| self.pending.contains_key(q));
        if let (Some(policy), Some(qid)) = (self.retry, qid) {
            let token = self.next_token;
            self.next_token += 1;
            self.inflight.insert(
                qid,
                InFlight {
                    token,
                    from,
                    to,
                    msg: msg.clone(),
                    attempts,
                },
            );
            self.net
                .schedule(from, policy.timeout_us, PeerMsg::Timeout { qid, token });
        }
        self.net.send(from, to, bytes, msg);
    }

    /// A retry timer fired: if the watched forward is still
    /// unacknowledged, re-route around the presumed-dead next hop and
    /// retry, or fail the query once the retry budget is spent.
    fn handle_timeout(&mut self, qid: u64, token: u64, at: u64) {
        let Some(policy) = self.retry else { return };
        if self.inflight.get(&qid).map(|f| f.token) != Some(token) {
            return; // acknowledged or superseded; stale timer
        }
        if !self.pending.contains_key(&qid) {
            // The query already completed through another path; drop
            // the leftover watch instead of resending phantom traffic.
            self.inflight.remove(&qid);
            return;
        }
        let entry = self.inflight.remove(&qid).expect("checked above");
        if entry.attempts >= policy.max_retries {
            let dead = self.peers[entry.to].id().clone();
            self.complete(
                qid,
                Vec::new(),
                Some(format!(
                    "gave up after {} retries; last hop {dead} unresponsive",
                    entry.attempts
                )),
                at,
            );
            return;
        }
        self.net.stats_mut().retries += 1;
        if let Some(stats) = self.pending.get_mut(&qid) {
            stats.retries += 1;
        }
        match entry.msg {
            PeerMsg::Mqp(wire) => {
                let mut mqp = Mqp::from_wire(&wire).expect("tracked envelope reparses");
                let sender = &self.peers[entry.from];
                let dead = self.peers[entry.to].id().clone();
                // §4.2 fallback: drop Or-alternatives that require the
                // dead server (when others survive), then re-route.
                let pruned = mqp_core::rewrite::prune_server_alternatives(mqp.plan_mut(), &dead);
                // The detour is provenance-visible (invariant 7).
                mqp.record(VisitRecord {
                    server: sender.id().clone(),
                    action: Action::Retried,
                    detail: if pruned > 0 {
                        format!(
                            "timeout waiting on {dead}; pruned {pruned} alternative(s), rerouting"
                        )
                    } else {
                        format!("timeout waiting on {dead}; rerouting")
                    },
                    at,
                    staleness: 0,
                });
                // Re-resolution: route again, excluding the dead hop —
                // the catalog's remaining alternatives take over. With
                // no alternative, resend to the same hop (it may be
                // mid-churn and rejoin).
                let next = sender
                    .route_excluding(mqp.plan(), &mqp.visited(), &dead)
                    .and_then(|s| self.index_of.get(&s).copied())
                    .unwrap_or(entry.to);
                let wire = mqp.to_wire();
                if let Some(stats) = self.pending.get_mut(&qid) {
                    stats.mqp_bytes += wire.len() as u64;
                }
                self.send_tracked(
                    Some(qid),
                    entry.from,
                    next,
                    PeerMsg::Mqp(wire),
                    entry.attempts + 1,
                );
            }
            // A result hop has a fixed destination (the client): resend
            // as-is.
            msg @ PeerMsg::Result { .. } => {
                self.send_tracked(Some(qid), entry.from, entry.to, msg, entry.attempts + 1);
            }
            _ => {}
        }
    }

    fn handle_mqp(&mut self, node: NodeId, wire: &str, at: u64) {
        let mut mqp = match Mqp::from_wire(wire) {
            Ok(m) => m,
            Err(e) => {
                // A malformed envelope is a protocol bug; surface loudly.
                panic!("malformed MQP envelope delivered to node {node}: {e}");
            }
        };
        let qid = mqp
            .plan()
            .target()
            .and_then(|t| t.rsplit_once('#'))
            .and_then(|(_, q)| q.parse::<u64>().ok());
        // The forward arrived: disarm its retry timer.
        if let Some(q) = qid {
            if self.inflight.get(&q).is_some_and(|f| f.to == node) {
                self.inflight.remove(&q);
            }
        }
        let peer = &self.peers[node];
        peer.set_clock(at);
        let outcome = peer.process(&mut mqp);
        match outcome {
            Outcome::Complete { target, items } => {
                // §3.4 cache learning: remember the server that *bound*
                // the URN (an index/meta server that knows the area),
                // not whoever happened to finish the reduction.
                let binder = mqp
                    .provenance()
                    .iter()
                    .find(|v| v.action == mqp_core::Action::Bound)
                    .map(|v| v.server.clone());
                if let Some(qid) = qid {
                    if let Some(stats) = self.pending.get_mut(&qid) {
                        stats.bound_by = binder;
                        // §5.1 audit at the completing server: every
                        // source of the original plan must be accounted
                        // for by some visit — detours included.
                        stats.audit_clean = mqp.original().map(|orig| {
                            mqp_core::unaccounted_sources(orig, mqp.provenance()).is_empty()
                        });
                    }
                }
                let (client_node, _) = match target.as_deref().and_then(|t| t.rsplit_once('#')) {
                    Some((client, _)) => {
                        let cid = ServerId::new(client);
                        (self.index_of.get(&cid).copied(), ())
                    }
                    None => (None, ()),
                };
                let items_xml: String = items.iter().map(mqp_xml::serialize).collect::<String>();
                match (client_node, qid) {
                    (Some(client), Some(qid)) => {
                        let msg = PeerMsg::Result {
                            qid,
                            items: items_xml,
                        };
                        if let Some(stats) = self.pending.get_mut(&qid) {
                            stats.hops += 1;
                        }
                        self.send_tracked(Some(qid), node, client, msg, 0);
                    }
                    _ => {
                        // No routable target: record completion in place.
                        if let Some(qid) = qid {
                            self.complete(qid, items, None, at);
                        }
                    }
                }
            }
            Outcome::Forward { to } => {
                let Some(&next) = self.index_of.get(&to) else {
                    if let Some(qid) = qid {
                        self.complete(
                            qid,
                            Vec::new(),
                            Some(format!("route to unknown server {to}")),
                            at,
                        );
                    }
                    return;
                };
                let wire = mqp.to_wire();
                let bytes = wire.len();
                if let Some(qid) = qid {
                    if let Some(stats) = self.pending.get_mut(&qid) {
                        stats.hops += 1;
                        stats.mqp_bytes += bytes as u64;
                    }
                }
                self.send_tracked(qid, node, next, PeerMsg::Mqp(wire), 0);
            }
            Outcome::Stuck { reason } => {
                if let Some(qid) = qid {
                    self.complete(qid, Vec::new(), Some(reason), at);
                }
            }
        }
    }

    fn finish_result(&mut self, qid: u64, items_xml: &str, at: u64) {
        // Reparse the concatenated items.
        let wrapped = format!("<results>{items_xml}</results>");
        let items: Vec<Element> = mqp_xml::parse(&wrapped)
            .map(|r| r.child_elements().cloned().collect())
            .unwrap_or_default();
        self.complete(qid, items, None, at);
    }

    fn complete(&mut self, qid: u64, items: Vec<Element>, failure: Option<String>, at: u64) {
        // Disarm any watch first, even for an already-completed qid —
        // a duplicate completion must not leave a timer that would
        // resend traffic for a finished query.
        self.inflight.remove(&qid);
        let Some(stats) = self.pending.remove(&qid) else {
            return;
        };
        if self.cache_learning && failure.is_none() {
            // §3.4: "peers maintain caches of index and meta-index
            // servers for interest areas" — the client learns which
            // server completed its query for this area and will route
            // straight there next time.
            if let (Some(area), Some(by)) = (&stats.area, &stats.bound_by) {
                if self.peers[stats.client].id() != by {
                    self.peers[stats.client]
                        .catalog_mut()
                        .record_route(area, by.clone());
                }
            }
        }
        self.completed.push(QueryOutcome {
            qid,
            items,
            failure,
            latency_us: at.saturating_sub(stats.submitted_at),
            hops: stats.hops,
            mqp_bytes: stats.mqp_bytes,
            retries: stats.retries,
            audit_clean: stats.audit_clean,
        });
    }

    /// Completed queries so far.
    pub fn completed(&self) -> &[QueryOutcome] {
        &self.completed
    }

    /// Takes the completed-query list, clearing it.
    pub fn take_completed(&mut self) -> Vec<QueryOutcome> {
        std::mem::take(&mut self.completed)
    }

    /// Queries still in flight.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_algebra::plan::Plan;
    use mqp_namespace::{Hierarchy, Namespace, Urn};
    use mqp_xml::parse;

    fn ns() -> Namespace {
        Namespace::new([
            Hierarchy::new("Location").with(["USA/OR/Portland", "USA/WA/Seattle"]),
            Hierarchy::new("Merchandise").with(["Music/CDs", "Furniture/Chairs"]),
        ])
    }

    fn pdx_cds() -> InterestArea {
        InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]])
    }

    /// A 4-peer world: client, meta-index, and two sellers.
    fn world() -> SimHarness {
        let client = Peer::new("client", ns()).with_default_route("meta");
        let mut meta = Peer::new("meta", ns());
        let mut s1 = Peer::new("seller-1", ns());
        s1.add_collection(
            "cds",
            pdx_cds(),
            [
                parse("<item><title>A</title><price>8</price></item>").unwrap(),
                parse("<item><title>B</title><price>12</price></item>").unwrap(),
            ],
        );
        let mut s2 = Peer::new("seller-2", ns());
        s2.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><title>C</title><price>9</price></item>").unwrap()],
        );
        // The meta-index knows both sellers.
        meta.catalog_mut().register(s1.base_entry());
        meta.catalog_mut().register(s2.base_entry());
        SimHarness::new(
            Topology::clustered(4, 2, 1_000, 50_000),
            vec![client, meta, s1, s2],
        )
    }

    #[test]
    fn end_to_end_interest_area_query() {
        let mut h = world();
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        let qid = h.submit(0, plan);
        h.run(1000);
        assert_eq!(h.pending_count(), 0);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert_eq!(q.qid, qid);
        assert!(q.failure.is_none(), "{:?}", q.failure);
        // Cheap CDs from both sellers.
        let mut titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
        titles.sort();
        assert_eq!(titles, ["A", "C"]);
        // Path: client → meta (bind) → seller → seller → client result.
        assert!(q.hops >= 3, "hops = {}", q.hops);
        assert!(q.latency_us > 0);
        assert!(q.mqp_bytes > 0);
    }

    #[test]
    fn unknown_area_gets_stuck() {
        let mut h = world();
        let nowhere = InterestArea::parse(&[&["France", "Cheese"]]);
        let plan = Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(nowhere)));
        h.submit(0, plan);
        h.run(1000);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        assert!(done[0].failure.is_some());
        assert!(done[0].items.is_empty());
    }

    #[test]
    fn cache_learning_shortens_second_query() {
        let mut h = world();
        h.cache_learning = true;
        let q = || {
            Plan::select(
                "price < 10",
                Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
            )
        };
        h.submit(0, q());
        h.run(1000);
        let first = h.take_completed().pop().unwrap();
        h.submit(0, q());
        h.run(1000);
        let second = h.take_completed().pop().unwrap();
        assert!(first.failure.is_none() && second.failure.is_none());
        // The client learned the completing server; the second query
        // skips ahead (strictly fewer or equal hops, and must not grow).
        assert!(
            second.hops <= first.hops,
            "{} > {}",
            second.hops,
            first.hops
        );
    }

    #[test]
    fn registration_messages_populate_catalogs() {
        let client = Peer::new("client", ns());
        let idx = Peer::new("idx", ns());
        let mut seller = Peer::new("seller", ns());
        seller.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><price>1</price></item>").unwrap()],
        );
        let entry = seller.base_entry();
        let mut h = SimHarness::new(Topology::uniform(3, 100), vec![client, idx, seller]);
        assert_eq!(h.peer(1).catalog().entries().len(), 0);
        h.send_registration(2, 1, entry);
        h.run(10);
        assert_eq!(h.peer(1).catalog().entries().len(), 1);
        assert!(h.net.stats().messages_delivered >= 1);
    }

    #[test]
    fn failed_server_leads_to_partial_or_stuck() {
        let mut h = world();
        // Kill seller-1 (node 2).
        h.net.fail(2);
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        h.submit(0, plan);
        h.run(1000);
        // The MQP died at the failed node: without a retry policy,
        // nothing completes and the query stays pending.
        assert_eq!(h.completed().len(), 0);
        assert_eq!(h.pending_count(), 1);
        assert!(h.net.stats().messages_dropped >= 1);
    }

    #[test]
    fn retry_detours_to_or_alternative_around_dead_server() {
        let mut h = world().with_retry(RetryPolicy::default());
        h.net.fail(2); // seller-1 is dead for the whole run
                       // Either seller alone satisfies the query (§4.2 Or).
        let plan = Plan::or([Plan::url("mqp://seller-1/"), Plan::url("mqp://seller-2/")]);
        h.submit(0, plan);
        h.run(10_000);
        assert_eq!(h.pending_count(), 0);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        // The forward to seller-1 timed out; the client reran routing
        // excluding it, landed on seller-2, which committed its own
        // alternative and completed.
        assert!(q.failure.is_none(), "{:?}", q.failure);
        assert_eq!(q.items.len(), 1);
        assert_eq!(q.items[0].field("title").as_deref(), Some("C"));
        assert!(
            q.retries >= 1,
            "expected a detour, got {} retries",
            q.retries
        );
        // Invariant 7: the detour is audit-clean.
        assert_eq!(q.audit_clean, Some(true));
        assert_eq!(h.net.stats().retries, q.retries);
    }

    #[test]
    fn retries_exhaust_into_failure_when_no_alternative_exists() {
        let mut h = world().with_retry(RetryPolicy {
            timeout_us: 200_000,
            max_retries: 2,
        });
        h.net.fail(2); // seller-1 holds data nothing else replicates
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        h.submit(0, plan);
        h.run(100_000);
        // The query no longer strands: it completes with an explicit
        // failure after the retry budget is spent.
        assert_eq!(h.pending_count(), 0);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert!(q.failure.as_deref().unwrap_or("").contains("retries"));
        assert!(q.retries >= 1);
    }

    #[test]
    fn retry_reaches_server_that_rejoins_mid_query() {
        use mqp_net::{ChurnEvent, FaultPlan};
        // Seller-1 is down from the start but rejoins at t = 300ms;
        // the retry loop keeps knocking and eventually gets through.
        let mut h = world()
            .with_retry(RetryPolicy {
                timeout_us: 250_000,
                max_retries: 5,
            })
            .with_fault_plan(FaultPlan::new(1).with_churn(vec![
                ChurnEvent {
                    at: 1,
                    node: 2,
                    up: false,
                },
                ChurnEvent {
                    at: 300_000,
                    node: 2,
                    up: true,
                },
            ]));
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        h.submit(0, plan);
        h.run(100_000);
        assert_eq!(h.pending_count(), 0);
        let done = h.completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert!(q.failure.is_none(), "{:?}", q.failure);
        let mut titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
        titles.sort();
        assert_eq!(titles, ["A", "C"]);
        assert!(q.retries >= 1);
        assert_eq!(q.audit_clean, Some(true));
    }
}

#[cfg(test)]
mod pull_tests {
    use super::*;
    use crate::peer::Peer;
    use mqp_namespace::{Hierarchy, Namespace};
    use mqp_xml::parse;

    #[test]
    fn pull_registrations_harvests_base_entries() {
        let ns = Namespace::new([Hierarchy::new("L").with(["A/B"])]);
        let idx = Peer::new("idx", ns.clone());
        let mut s1 = Peer::new("s1", ns.clone());
        s1.add_collection(
            "c",
            mqp_namespace::InterestArea::parse(&[&["A/B"]]),
            [parse("<i/>").unwrap()],
        );
        let s2 = Peer::new("s2", ns.clone()); // empty: skipped
        let mut h = SimHarness::new(Topology::uniform(3, 100), vec![idx, s1, s2]);
        let pulled = h.pull_registrations(0, &[1, 2]);
        assert_eq!(pulled, 1);
        h.run(100);
        // The index learned the base entry; the base learned the index.
        assert_eq!(h.peer(0).catalog().entries().len(), 1);
        assert!(h
            .peer(1)
            .catalog()
            .entries()
            .iter()
            .any(|e| e.server.as_str() == "idx"));
        assert!(h.net.stats().messages_delivered >= 2);
    }
}
