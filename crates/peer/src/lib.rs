//! # mqp-peer — the peer protocol core and its drivers
//!
//! Ties the pieces together in three layers (DESIGN.md §8):
//!
//! * [`Peer`] — one peer's knowledge: a local data store, a catalog, a
//!   namespace copy (for its category-server role), and a mutant-query
//!   `Processor`; it implements `ServerContext` so the processor can
//!   bind, reduce, and route plans against this peer's knowledge.
//! * [`PeerNode`] — the **sans-IO protocol core**: one `Peer` plus its
//!   per-query protocol state (retry watches, ack bookkeeping,
//!   registration handling, client-side route-cache learning), exposed
//!   as a pure event machine — `on_message`/`on_tick`/`submit` return
//!   [`Effect`]s for a host to execute. No sockets, no channels, no
//!   clocks.
//! * The drivers: [`SimHarness`] feeds `PeerNode`s from the `mqp-net`
//!   discrete-event simulator (deterministic; the substrate for every
//!   experiment in EXPERIMENTS.md), [`ThreadedCluster`] drives the
//!   identical nodes over `mqp_net::threaded` endpoints on real OS
//!   threads with an [`MqpClient`] front-end supporting many
//!   concurrent in-flight queries, and [`TcpCluster`] drives them over
//!   real TCP sockets — length-prefixed [`framing`], reconnecting
//!   links, bounded write queues — behind an equivalent [`TcpClient`]
//!   (`tests/equivalence.rs` pins all three to identical outcomes).
//!
//! Peer roles (§3.2) are configuration, not types: a peer with local
//! collections is a *base server*; one with catalog entries it answers
//! routing queries from is an *index* or *meta-index* server; one that
//! can answer namespace questions is a *category server*. A single peer
//! may do all four — "this query's client may well become the next
//! query's server" (§1).

pub mod cluster;
pub mod framing;
pub mod harness;
pub mod node;
pub mod peer;
pub mod store;
pub mod tcp;
pub mod wire;

pub use cluster::{ClusterStats, MqpClient, ThreadedCluster};
pub use harness::{SimHarness, SimMsg};
pub use mqp_core::{QueryId, QueryOutcome};
pub use node::{Directory, Effect, PeerNode, RetryPolicy};
pub use peer::Peer;
pub use store::{Collection, LocalStore};
pub use tcp::{TcpClient, TcpCluster, TcpConfig};
