//! # mqp-peer — a peer node and the simulation harness
//!
//! Ties the pieces together: a [`Peer`] owns a local data store, a
//! catalog, a namespace copy (for its category-server role), and a
//! mutant-query `Processor`; it implements `ServerContext` so the
//! processor can bind, reduce, and route plans against this peer's
//! knowledge. The [`SimHarness`] runs a population of peers over the
//! `mqp-net` discrete-event simulator, moving serialized MQP envelopes
//! between them and accounting every byte — the substrate for every
//! experiment in EXPERIMENTS.md.
//!
//! Peer roles (§3.2) are configuration, not types: a peer with local
//! collections is a *base server*; one with catalog entries it answers
//! routing queries from is an *index* or *meta-index* server; one that
//! can answer namespace questions is a *category server*. A single peer
//! may do all four — "this query's client may well become the next
//! query's server" (§1).

pub mod harness;
pub mod peer;
pub mod store;

pub use harness::{PeerMsg, QueryOutcome, QueryStats, RetryPolicy, SimHarness};
pub use peer::Peer;
pub use store::{Collection, LocalStore};
