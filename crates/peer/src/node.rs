//! The sans-IO protocol core: one [`PeerNode`] per participating peer,
//! driving the full MQP peer protocol — envelope processing, catalog
//! registration, result delivery, ack bookkeeping, and timeout/retry —
//! as a pure event machine. A node never touches a socket, a channel,
//! or a clock: hosts feed it events ([`PeerNode::on_message`],
//! [`PeerNode::on_tick`], [`PeerNode::submit`]) and execute the
//! [`Effect`]s it returns.
//!
//! Two drivers exist (DESIGN.md §8): the deterministic simulator
//! ([`SimHarness`](crate::harness::SimHarness)) and the real-thread
//! [`ThreadedCluster`](crate::cluster::ThreadedCluster). Both run this
//! exact state machine; they differ only in how they move bytes and
//! how much transport-level omniscience they inject (the simulator
//! short-circuits [`Effect::Ack`] because delivery *is* the ack there,
//! and globally cancels watches on completion to reproduce the legacy
//! single-watch-per-query semantics byte-for-byte).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mqp_algebra::plan::{Plan, UrlRef};
use mqp_algebra::predicate::AggFunc;
use mqp_catalog::durable::RecoveryReport;
use mqp_catalog::{classify, CatalogEntry, Level, Observation, ServerId};
use mqp_core::{Action, Mqp, Outcome, QueryId, QueryOutcome, VisitRecord};
use mqp_namespace::InterestArea;
use mqp_net::NodeId;

use crate::peer::Peer;
use crate::wire::{Frame, Meter, MqpFrame, ResultFrame};

/// Timeout/retry knobs for in-flight MQP and result hops. With a policy
/// installed, every forward with a known query id arms a watch at the
/// sending node; if no acknowledgement arrives before the deadline, the
/// sender re-routes around the presumed-dead hop (recording the detour
/// in provenance, DESIGN.md invariant 7) and retries, up to
/// `max_retries` times.
///
/// The watch lives at the sending peer: if *that* peer crashes while
/// its only copy is in flight, the timer dies with it and the query
/// strands (DESIGN.md §6, liveness caveat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long a forward may stay unacknowledged (µs).
    pub timeout_us: u64,
    /// Retries per forward before the query is failed.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            // Comfortably above the widest-area round trip the built-in
            // topologies produce, including jitter.
            timeout_us: 500_000,
            max_retries: 3,
        }
    }
}

/// Maps peer names to transport addresses. This is addressing
/// configuration (who sits where), not distributed state: both drivers
/// build it once at startup, exactly as a deployment would distribute a
/// membership list.
///
/// Two representations coexist: an explicit head of named peers
/// (clients, index servers, …) and an optional *generated tail* whose
/// ids follow a `<prefix><k>` scheme. A 1M-seller world stores the
/// handful of head ids plus one prefix string — O(named) memory —
/// instead of a million `ServerId`s and a million hash-map slots.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    named: Vec<ServerId>,
    index: HashMap<ServerId, NodeId>,
    /// When set, nodes `named.len()..len` are named `<prefix><k>` with
    /// `k` counting from zero.
    tail_prefix: Option<String>,
    len: usize,
}

impl Directory {
    /// Builds the directory; peer `i` sits at node `i`.
    pub fn new(ids: Vec<ServerId>) -> Self {
        let index = ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), i))
            .collect();
        let len = ids.len();
        Directory {
            named: ids,
            index,
            tail_prefix: None,
            len,
        }
    }

    /// A directory with `named` explicit peers at the head and `tail`
    /// scheme-named peers after them: node `named.len() + k` is
    /// `"<prefix><k>"`. The tail is never materialized.
    pub fn with_generated_tail(
        named: Vec<ServerId>,
        prefix: impl Into<String>,
        tail: usize,
    ) -> Self {
        let mut d = Directory::new(named);
        d.tail_prefix = Some(prefix.into());
        d.len += tail;
        d
    }

    /// Transport address of a peer.
    pub fn node_of(&self, id: &ServerId) -> Option<NodeId> {
        if let Some(&n) = self.index.get(id) {
            return Some(n);
        }
        let prefix = self.tail_prefix.as_deref()?;
        let digits = id.as_str().strip_prefix(prefix)?;
        if digits.len() > 1 && digits.starts_with('0') {
            return None; // non-canonical: id_of never emits leading zeros
        }
        let k: usize = digits.parse().ok()?;
        let node = self.named.len().checked_add(k)?;
        (node < self.len).then_some(node)
    }

    /// Peer name at an address. Tail names are generated on demand, so
    /// this returns an owned (cheaply cloned, interned) id.
    pub fn id_of(&self, node: NodeId) -> ServerId {
        if let Some(id) = self.named.get(node) {
            return id.clone();
        }
        assert!(node < self.len, "node {node} out of directory range");
        let prefix = self
            .tail_prefix
            .as_deref()
            .expect("node beyond named ids in a directory with no generated tail");
        ServerId::new(format!("{prefix}{}", node - self.named.len()))
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// What a [`PeerNode`] asks its host to do. Effects are returned in
/// execution order; drivers must apply them in order (the simulator's
/// determinism depends on it).
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Ship `bytes` to node `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The encoded wire frame (see [`crate::wire`]).
        bytes: Vec<u8>,
    },
    /// A query reached a terminal state at this node. Drivers route the
    /// outcome to the submitting front-end (and deduplicate by query
    /// id: under duplication faults more than one peer can complete the
    /// same query).
    Complete(QueryOutcome),
    /// Call [`PeerNode::on_tick`] at (or after) `at`; the node armed a
    /// retry watch for `qid` expiring then.
    SetTimer {
        /// The watched query.
        qid: QueryId,
        /// Absolute deadline on the driving clock (µs).
        at: u64,
    },
    /// This node accepted a catalog registration (observability only —
    /// the entry is already applied to the node's own catalog).
    Register(CatalogEntry),
    /// Acknowledge to node `to` that its tracked forward of `qid` was
    /// received here. The simulator applies this directly
    /// ([`PeerNode::on_ack`]) at zero cost; the threaded cluster ships
    /// it as a real `ack` frame.
    Ack {
        /// The original sender being acknowledged.
        to: NodeId,
        /// The acknowledged query.
        qid: QueryId,
    },
    /// A timeout-driven retry happened (transport-level observability:
    /// the simulator counts it in `NetStats::retries`).
    Retried {
        /// The retried query.
        qid: QueryId,
    },
    /// This node came back from a crash: its durable catalog replayed
    /// to a prefix-consistent state (the report says how much survived)
    /// and the accompanying `Send` effects re-announce its bindings as
    /// `rereg` frames. Observability only.
    Recovered(RecoveryReport),
}

/// One armed retry watch: an unacknowledged forward (MQP or result
/// hop), with the frame to resend.
#[derive(Debug, Clone)]
struct Watch {
    qid: QueryId,
    deadline: u64,
    to: NodeId,
    attempts: u32,
    frame: Frame,
}

/// Client-side state for a query this node submitted.
#[derive(Debug, Clone)]
struct ClientQuery {
    /// The interest area of the query's first interest-area URN, if
    /// any (what §3.4 cache learning keys on).
    area: Option<InterestArea>,
}

/// One in-flight verification probe (DESIGN.md §14): a `count(σ(B))`
/// sub-query sent to one claimant of a contested area.
#[derive(Debug, Clone)]
struct Probe {
    area_key: String,
    server: ServerId,
}

/// One verification round over a contested area's full claimant set.
#[derive(Debug, Clone)]
struct Round {
    expected: usize,
    got: Vec<Observation>,
    started_at: u64,
}

/// Verification query ids live in their own namespace (the high bit no
/// workload qid ever sets), so probe traffic can never collide with
/// driver-allocated query ids.
const VQID_BASE: u64 = 1 << 63;

/// A round whose probes went unanswered this long (a claimant crashed
/// mid-probe) is abandoned so the area can be re-verified.
const ROUND_TTL_US: u64 = 10_000_000;

/// A peer participating in the MQP protocol: one [`Peer`] (store +
/// catalog + processor) plus the per-query protocol state the old
/// monolithic harness kept centrally — pending retries, registration
/// handling, ack bookkeeping, and client-side route-cache learning.
pub struct PeerNode {
    node: NodeId,
    peer: Peer,
    directory: Arc<Directory>,
    retry: Option<RetryPolicy>,
    cache_learning: bool,
    /// Armed watches in arming order (re-arming moves to the back,
    /// mirroring a fresh timer). At most a handful per node.
    watches: Vec<Watch>,
    /// Queries this node submitted and has not yet seen complete.
    client: HashMap<QueryId, ClientQuery>,
    /// Queries known to have completed: sends for them go untracked so
    /// a duplicate re-completion can never re-arm retries.
    done: HashSet<QueryId>,
    /// In-flight verification probes, by verification query id.
    verify: HashMap<QueryId, Probe>,
    /// Open verification rounds, by contested area key.
    rounds: HashMap<String, Round>,
    /// Allocator for this node's verification query ids.
    vqid_counter: u64,
}

impl PeerNode {
    /// Wraps a peer as a protocol node at transport address `node`.
    pub fn new(node: NodeId, peer: Peer, directory: Arc<Directory>) -> Self {
        PeerNode {
            node,
            peer,
            directory,
            retry: None,
            cache_learning: false,
            watches: Vec::new(),
            client: HashMap::new(),
            done: HashSet::new(),
            verify: HashMap::new(),
            rounds: HashMap::new(),
            vqid_counter: 0,
        }
    }

    /// This node's transport address.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The wrapped peer.
    pub fn peer(&self) -> &Peer {
        &self.peer
    }

    /// The wrapped peer, mutably (world setup, catalog seeding).
    pub fn peer_mut(&mut self) -> &mut Peer {
        &mut self.peer
    }

    /// The directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Installs (or clears) the timeout/retry policy.
    pub fn set_retry(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// Enables §3.4 route-cache learning for queries this node submits.
    pub fn set_cache_learning(&mut self, on: bool) {
        self.cache_learning = on;
    }

    /// Earliest armed watch deadline, if any — hosts without a
    /// scheduled-timer transport (the threaded worker loop) use this to
    /// bound their receive timeout.
    pub fn next_deadline(&self) -> Option<u64> {
        self.watches.iter().map(|w| w.deadline).min()
    }

    /// Simulated power loss. For a peer with a durable catalog
    /// (DESIGN.md §12) this drops all volatile protocol state — armed
    /// watches, client bookkeeping, the in-memory catalog — and crashes
    /// the journal's disk (unsynced WAL tail lost, possibly torn). For
    /// a legacy volatile peer it is deliberately a no-op: the pre-
    /// durability kill semantics model an interface outage with memory
    /// intact, and the existing churn tests and golden traces pin that.
    pub fn crash(&mut self) {
        if self.peer.crash_volatile() {
            self.watches.clear();
            self.client.clear();
            self.done.clear();
            self.verify.clear();
            self.rounds.clear();
        }
    }

    /// Restart after a crash: recovers the catalog from the journal
    /// (prefix-consistent replay) and re-announces this peer's own
    /// surviving bindings as untracked [`Frame::Rereg`] frames to every
    /// index/meta-index server the recovered catalog knows, plus the
    /// bootstrap route. Ends with [`Effect::Recovered`] carrying the
    /// recovery report. Without a journal: nothing to replay, no
    /// effects — the same recovery state machine, degenerate case.
    pub fn recover(&mut self, now: u64) -> Vec<Effect> {
        let Some(report) = self.peer.recover_catalog() else {
            return Vec::new();
        };
        self.peer.set_clock(now);
        let me = self.peer.id().clone();
        let mine: Vec<CatalogEntry> = self
            .peer
            .catalog()
            .entries()
            .iter()
            .filter(|e| e.server == me)
            .map(|e| (**e).clone())
            .collect();
        // Announcement targets, deduped in catalog order; the bootstrap
        // route last (a seller's recovered catalog often holds nothing
        // but its own entries).
        let mut targets: Vec<ServerId> = Vec::new();
        for e in self.peer.catalog().entries() {
            if matches!(e.level, Level::Index | Level::MetaIndex)
                && e.server != me
                && !targets.contains(&e.server)
            {
                targets.push(e.server.clone());
            }
        }
        if let Some(boot) = self.peer.default_route() {
            if *boot != me && !targets.contains(boot) {
                targets.push(boot.clone());
            }
        }
        let mut effects = Vec::new();
        for target in &targets {
            let Some(node) = self.directory.node_of(target) else {
                continue;
            };
            for entry in &mine {
                effects.push(Effect::Send {
                    to: node,
                    bytes: Frame::Rereg(entry.clone()).encode(),
                });
            }
        }
        effects.push(Effect::Recovered(report));
        effects
    }

    /// Submits a query plan at this node: wraps it in a `Display`
    /// targeting this peer (`<id>#<qid>`), records client-side state,
    /// and emits the initial self-delivery (processing starts at the
    /// submitting peer itself, which is also how the paper's "this
    /// query's client may well become the next query's server" reads).
    pub fn submit(&mut self, qid: QueryId, plan: Plan, now: u64) -> Vec<Effect> {
        let target = format!("{}#{}", self.peer.id(), qid);
        let plan = match plan {
            Plan::Display { input, .. } => Plan::display(target, *input),
            other => Plan::display(target, other),
        };
        // Track the query's interest area for cache learning.
        let area = plan.urns().iter().find_map(|u| u.urn.as_area().cloned());
        self.client.insert(qid, ClientQuery { area });
        let mqp = Mqp::new(plan);
        let wire = mqp.to_wire();
        let frame = Frame::Mqp(MqpFrame {
            qid: Some(qid),
            meter: Meter {
                submitted_at: now,
                hops: 0,
                mqp_bytes: wire.len() as u64,
                retries: 0,
            },
            envelope: wire,
        });
        // The initial self-delivery is deliberately untracked: there is
        // no previous hop to retry from.
        vec![Effect::Send {
            to: self.node,
            bytes: frame.encode(),
        }]
    }

    /// A wire frame arrived from `from`. Returns the effects to apply,
    /// in order.
    pub fn on_message(&mut self, from: NodeId, bytes: &[u8], now: u64) -> Vec<Effect> {
        let frame = match Frame::decode(bytes) {
            Ok(f) => f,
            Err(e) => {
                // A malformed frame is a protocol bug; surface loudly.
                panic!("malformed frame delivered to node {}: {e}", self.node);
            }
        };
        match frame {
            // A re-registration after crash recovery merges exactly like
            // a first registration; the distinct tag only matters to
            // traffic accounting.
            Frame::Register(entry) | Frame::Rereg(entry) => {
                let subject = entry.server.clone();
                let conflict = self
                    .peer
                    .register_entry_from(entry.clone(), from as u64, now);
                let mut effects = vec![Effect::Register(entry)];
                if let Some((area_key, claimants)) = conflict {
                    effects.extend(self.open_verification(&subject, &area_key, &claimants, now));
                }
                effects
            }
            Frame::Ack { qid } => {
                self.on_ack(from, qid);
                Vec::new()
            }
            Frame::Submit { qid, plan } => {
                let mqp = Mqp::from_wire(&plan)
                    .unwrap_or_else(|e| panic!("malformed submitted plan: {e:?}"));
                self.submit(qid, mqp.plan().clone(), now)
            }
            // Hot policy reload: takes effect from the next processing
            // step; in-flight envelopes keep their meters and watches
            // untouched.
            Frame::Policy(rules) => {
                self.peer.set_rules(rules);
                Vec::new()
            }
            // Stop and hello are host-level (driver control and stream
            // handshake); a node receiving either does nothing.
            Frame::Stop | Frame::Hello { .. } => Vec::new(),
            Frame::Result(rf) => self.handle_result(from, rf, now),
            Frame::Mqp(mf) => self.handle_mqp(from, mf, now),
        }
    }

    /// Node `acker` confirmed receipt of this node's tracked forward of
    /// `qid`: disarm the watch if it was indeed aimed at `acker`.
    pub fn on_ack(&mut self, acker: NodeId, qid: QueryId) {
        self.watches.retain(|w| !(w.qid == qid && w.to == acker));
    }

    /// Drops any watch for `qid` without marking the query done. The
    /// simulator driver uses this to reproduce the legacy
    /// single-watch-per-query semantics: arming a watch anywhere
    /// cancels the previous holder's.
    pub fn cancel_watch(&mut self, qid: QueryId) {
        self.watches.retain(|w| w.qid != qid);
    }

    /// Records that `qid` reached a terminal state somewhere: drops any
    /// watch and suppresses future retry tracking for it (a duplicate
    /// re-completion must not re-arm retries or resend phantom
    /// traffic).
    pub fn mark_done(&mut self, qid: QueryId) {
        self.cancel_watch(qid);
        self.client.remove(&qid);
        self.done.insert(qid);
    }

    /// The driving clock passed `now`: fire every expired watch, in
    /// arming order. Ticks with nothing expired are no-ops.
    pub fn on_tick(&mut self, now: u64) -> Vec<Effect> {
        let Some(policy) = self.retry else {
            return Vec::new();
        };
        let mut effects = Vec::new();
        let mut i = 0;
        while i < self.watches.len() {
            if self.watches[i].deadline > now {
                i += 1;
                continue;
            }
            let w = self.watches.remove(i);
            if self.done.contains(&w.qid) {
                // The query already completed through another path;
                // drop the leftover watch instead of resending phantom
                // traffic.
                continue;
            }
            if w.attempts >= policy.max_retries {
                let dead = self.directory.id_of(w.to);
                effects.push(Effect::Complete(mk_outcome(
                    w.qid,
                    frame_meter(&w.frame),
                    now,
                    mqp_xml::Batch::new(),
                    Some(format!(
                        "gave up after {} retries; last hop {dead} unresponsive",
                        w.attempts
                    )),
                    frame_audit(&w.frame),
                )));
                continue;
            }
            effects.push(Effect::Retried { qid: w.qid });
            match w.frame {
                Frame::Mqp(mut mf) => {
                    let mut mqp = Mqp::from_wire(&mf.envelope).expect("tracked envelope reparses");
                    let dead = self.directory.id_of(w.to);
                    // §4.2 fallback: drop Or-alternatives that require
                    // the dead server (when others survive), then
                    // re-route.
                    let pruned =
                        mqp_core::rewrite::prune_server_alternatives(mqp.plan_mut(), &dead);
                    // The detour is provenance-visible (invariant 7).
                    mqp.record(VisitRecord {
                        server: self.peer.id().clone(),
                        action: Action::Retried,
                        detail: if pruned > 0 {
                            format!(
                                "timeout waiting on {dead}; pruned {pruned} alternative(s), rerouting"
                            )
                        } else {
                            format!("timeout waiting on {dead}; rerouting")
                        },
                        at: now,
                        staleness: 0,
                    });
                    // Re-resolution: route again, excluding the dead
                    // hop — the catalog's remaining alternatives take
                    // over. With no alternative, resend to the same hop
                    // (it may be mid-churn and rejoin).
                    let next = self
                        .peer
                        .route_excluding(mqp.plan(), &mqp.visited(), &dead)
                        .and_then(|s| self.directory.node_of(&s))
                        .unwrap_or(w.to);
                    let wire = mqp.to_wire();
                    mf.meter.mqp_bytes += wire.len() as u64;
                    mf.meter.retries += 1;
                    mf.envelope = wire;
                    self.tracked_send(
                        Some(w.qid),
                        next,
                        Frame::Mqp(mf),
                        w.attempts + 1,
                        now,
                        &mut effects,
                    );
                }
                // A result hop has a fixed destination (the client):
                // resend as-is.
                Frame::Result(mut rf) => {
                    rf.meter.retries += 1;
                    self.tracked_send(
                        Some(w.qid),
                        w.to,
                        Frame::Result(rf),
                        w.attempts + 1,
                        now,
                        &mut effects,
                    );
                }
                _ => {}
            }
        }
        effects
    }

    /// Sends `frame` and, when a retry policy is active and the query
    /// is not known to be finished, arms a watch at this node.
    fn tracked_send(
        &mut self,
        qid: Option<QueryId>,
        to: NodeId,
        frame: Frame,
        attempts: u32,
        now: u64,
        effects: &mut Vec<Effect>,
    ) {
        let bytes = frame.encode();
        let qid = qid.filter(|q| !self.done.contains(q));
        if let (Some(policy), Some(qid)) = (self.retry, qid) {
            let deadline = now + policy.timeout_us;
            // Re-arming replaces the previous watch for this query.
            self.cancel_watch(qid);
            self.watches.push(Watch {
                qid,
                deadline,
                to,
                attempts,
                frame,
            });
            effects.push(Effect::SetTimer { qid, at: deadline });
        }
        effects.push(Effect::Send { to, bytes });
    }

    /// Opens a verification round for a contested area (DESIGN.md §14):
    /// asks the installed rules what to do about the newly conflicting
    /// `subject` (summary quarantine, verify, or nothing), then sends
    /// each claimant a `count(σ(B))` probe — an ordinary MQP riding the
    /// existing wire frames, displayed back to this peer under a
    /// verification query id. Fire-and-forget: probes are untracked, and
    /// a round whose answers never arrive expires after [`ROUND_TTL_US`].
    fn open_verification(
        &mut self,
        subject: &ServerId,
        area_key: &str,
        claimants: &[ServerId],
        now: u64,
    ) -> Vec<Effect> {
        let effects = Vec::new();
        let (quarantine, verify) = self.peer.trust_decision(subject);
        if quarantine {
            self.peer.quarantine_server(subject, now);
            return effects;
        }
        if !verify {
            return effects;
        }
        if let Some(open) = self.rounds.get(area_key) {
            if now.saturating_sub(open.started_at) < ROUND_TTL_US {
                return effects; // one round per area at a time
            }
            // A claimant never answered: abandon the stale round.
            self.verify.retain(|_, p| p.area_key != area_key);
            self.rounds.remove(area_key);
        }
        let me = self.peer.id().clone();
        let mut effects = effects;
        let mut expected = 0;
        for server in claimants {
            let Some(node) = self.directory.node_of(server) else {
                continue;
            };
            self.vqid_counter += 1;
            let vqid = QueryId::new(VQID_BASE | ((self.node as u64) << 24) | self.vqid_counter);
            let mut url = UrlRef::new(server.to_url());
            url.meta.set("area", area_key);
            let plan = Plan::display(
                format!("{me}#{vqid}"),
                Plan::aggregate(AggFunc::Count, None, Plan::Url(url)),
            );
            let wire = Mqp::new(plan).to_wire();
            let frame = Frame::Mqp(MqpFrame {
                qid: Some(vqid),
                meter: Meter {
                    submitted_at: now,
                    hops: 0,
                    mqp_bytes: wire.len() as u64,
                    retries: 0,
                },
                envelope: wire,
            });
            self.verify.insert(
                vqid,
                Probe {
                    area_key: area_key.to_owned(),
                    server: server.clone(),
                },
            );
            expected += 1;
            effects.push(Effect::Send {
                to: node,
                bytes: frame.encode(),
            });
        }
        if expected > 0 {
            self.rounds.insert(
                area_key.to_owned(),
                Round {
                    expected,
                    got: Vec::new(),
                    started_at: now,
                },
            );
        }
        effects
    }

    /// A probe answer came back: fold it into its round, and when the
    /// round is complete, classify the claimant set and apply the
    /// verdicts (journaled trust transitions) at the wrapped peer.
    fn absorb_probe(&mut self, probe: Probe, rf: &ResultFrame, now: u64) {
        // A malformed or empty answer reads as zero qualifying items.
        let wrapped = format!("<results>{}</results>", rf.items);
        let count = mqp_xml::parse(&wrapped)
            .ok()
            .and_then(|r| {
                r.child_elements()
                    .next()
                    .and_then(|e| e.deep_text().trim().parse::<u64>().ok())
            })
            .unwrap_or(0);
        let fresh = self.peer.catalog().trust().is_fresh(&probe.server, now);
        let Some(round) = self.rounds.get_mut(&probe.area_key) else {
            return;
        };
        round.got.push(Observation {
            server: probe.server,
            count,
            fingerprint: mqp_catalog::trust::fingerprint(rf.items.as_bytes()),
            fresh,
        });
        if round.got.len() < round.expected {
            return;
        }
        let round = self.rounds.remove(&probe.area_key).expect("round present");
        let verdicts = classify(&round.got);
        self.peer.apply_trust_round(&verdicts, now);
    }

    fn handle_result(&mut self, from: NodeId, rf: ResultFrame, now: u64) -> Vec<Effect> {
        let mut effects = vec![Effect::Ack {
            to: from,
            qid: rf.qid,
        }];
        // A verification probe answer is protocol-internal: absorb it
        // into its round instead of surfacing a client completion.
        if let Some(probe) = self.verify.remove(&rf.qid) {
            self.absorb_probe(probe, &rf, now);
            return effects;
        }
        // §3.4 cache learning, applied once — when the first result for
        // a query this node submitted arrives.
        if let Some(cq) = self.client.remove(&rf.qid) {
            if self.cache_learning {
                if let (Some(area), Some(by)) = (&cq.area, &rf.bound_by) {
                    if self.peer.id() != by {
                        self.peer.catalog_mut().record_route(area, by.clone());
                    }
                }
            }
        }
        // Reparse the concatenated items.
        let wrapped = format!("<results>{}</results>", rf.items);
        let items: mqp_xml::Batch = mqp_xml::parse(&wrapped)
            .map(|r| r.child_elements().cloned().collect())
            .unwrap_or_default();
        effects.push(Effect::Complete(mk_outcome(
            rf.qid,
            rf.meter,
            now,
            items,
            None,
            rf.audit_clean,
        )));
        effects
    }

    fn handle_mqp(&mut self, from: NodeId, mf: MqpFrame, now: u64) -> Vec<Effect> {
        let mut effects = Vec::new();
        // The forward arrived: acknowledge so the sender disarms.
        if let Some(qid) = mf.qid {
            effects.push(Effect::Ack { to: from, qid });
        }
        let mut mqp = match Mqp::from_wire(&mf.envelope) {
            Ok(m) => m,
            Err(e) => {
                // A malformed envelope is a protocol bug; surface loudly.
                panic!(
                    "malformed MQP envelope delivered to node {}: {e:?}",
                    self.node
                );
            }
        };
        self.peer.set_clock(now);
        let outcome = self.peer.process(&mut mqp);
        match outcome {
            Outcome::Complete { target, items } => {
                // §3.4 cache learning: remember the server that *bound*
                // the URN (an index/meta server that knows the area),
                // not whoever happened to finish the reduction.
                let bound_by = mqp
                    .provenance()
                    .iter()
                    .find(|v| v.action == Action::Bound)
                    .map(|v| v.server.clone());
                // §5.1 audit at the completing server: every source of
                // the original plan must be accounted for by some visit
                // — detours included.
                let audit_clean = mqp
                    .original()
                    .map(|orig| mqp_core::unaccounted_sources(orig, mqp.provenance()).is_empty());
                let client_node = target
                    .as_deref()
                    .and_then(|t| t.rsplit_once('#'))
                    .and_then(|(client, _)| self.directory.node_of(&ServerId::new(client)));
                let items_xml: String = items.iter().map(mqp_xml::serialize).collect();
                match (client_node, mf.qid) {
                    (Some(client), Some(qid)) => {
                        let mut meter = mf.meter;
                        meter.hops += 1;
                        self.tracked_send(
                            Some(qid),
                            client,
                            Frame::Result(ResultFrame {
                                qid,
                                meter,
                                audit_clean,
                                bound_by,
                                items: items_xml,
                            }),
                            0,
                            now,
                            &mut effects,
                        );
                    }
                    (_, qid) => {
                        // No routable target: record completion in
                        // place.
                        if let Some(qid) = qid {
                            effects.push(Effect::Complete(mk_outcome(
                                qid,
                                mf.meter,
                                now,
                                items,
                                None,
                                audit_clean,
                            )));
                        }
                    }
                }
            }
            Outcome::Forward { to } => {
                let Some(next) = self.directory.node_of(&to) else {
                    if let Some(qid) = mf.qid {
                        effects.push(Effect::Complete(mk_outcome(
                            qid,
                            mf.meter,
                            now,
                            mqp_xml::Batch::new(),
                            Some(format!("route to unknown server {to}")),
                            None,
                        )));
                    }
                    return effects;
                };
                let wire = mqp.to_wire();
                let mut meter = mf.meter;
                meter.hops += 1;
                meter.mqp_bytes += wire.len() as u64;
                self.tracked_send(
                    mf.qid,
                    next,
                    Frame::Mqp(MqpFrame {
                        qid: mf.qid,
                        meter,
                        envelope: wire,
                    }),
                    0,
                    now,
                    &mut effects,
                );
            }
            Outcome::Stuck { reason } => {
                if let Some(qid) = mf.qid {
                    effects.push(Effect::Complete(mk_outcome(
                        qid,
                        mf.meter,
                        now,
                        mqp_xml::Batch::new(),
                        Some(reason),
                        None,
                    )));
                }
            }
        }
        effects
    }
}

/// The one place a travelling [`Meter`] becomes a [`QueryOutcome`]:
/// latency is measured from the meter's submission stamp, and the
/// carried counters are reported as-is.
fn mk_outcome(
    qid: QueryId,
    meter: Meter,
    now: u64,
    items: mqp_xml::Batch,
    failure: Option<String>,
    audit_clean: Option<bool>,
) -> QueryOutcome {
    QueryOutcome {
        qid,
        items,
        failure,
        latency_us: now.saturating_sub(meter.submitted_at),
        hops: meter.hops,
        mqp_bytes: meter.mqp_bytes,
        retries: meter.retries,
        audit_clean,
    }
}

fn frame_meter(frame: &Frame) -> Meter {
    match frame {
        Frame::Mqp(f) => f.meter,
        Frame::Result(f) => f.meter,
        _ => Meter::default(),
    }
}

fn frame_audit(frame: &Frame) -> Option<bool> {
    match frame {
        // A failed result hop still carries the completing server's
        // audit verdict.
        Frame::Result(f) => f.audit_clean,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_namespace::{Hierarchy, Namespace, Urn};
    use mqp_xml::parse;

    fn ns() -> Namespace {
        Namespace::new([
            Hierarchy::new("Location").with(["USA/OR/Portland"]),
            Hierarchy::new("Merchandise").with(["Music/CDs"]),
        ])
    }

    fn pdx_cds() -> InterestArea {
        InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]])
    }

    fn directory(ids: &[&str]) -> Arc<Directory> {
        Arc::new(Directory::new(
            ids.iter().map(|s| ServerId::new(*s)).collect(),
        ))
    }

    fn seller_node(node: NodeId, dir: &Arc<Directory>) -> PeerNode {
        let mut p = Peer::new(dir.id_of(node), ns());
        p.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><title>A</title><price>8</price></item>").unwrap()],
        );
        PeerNode::new(node, p, Arc::clone(dir))
    }

    /// A submit at a data-holding peer completes locally: the node
    /// self-sends the envelope, processes it, and sends itself the
    /// result, which becomes a `Complete` effect.
    #[test]
    fn submit_process_complete_locally() {
        let dir = directory(&["solo"]);
        let mut n = seller_node(0, &dir);
        let qid = QueryId::new(0);
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        let fx = n.submit(qid, plan, 100);
        let [Effect::Send { to, bytes }] = &fx[..] else {
            panic!("expected one Send, got {fx:?}");
        };
        assert_eq!(*to, 0);
        let fx = n.on_message(0, bytes, 100);
        // Ack to self (harmless) + result self-send.
        let send = fx
            .iter()
            .find_map(|e| match e {
                Effect::Send { to, bytes } => Some((*to, bytes.clone())),
                _ => None,
            })
            .expect("result send");
        assert_eq!(send.0, 0);
        let fx = n.on_message(0, &send.1, 250);
        let done = fx
            .iter()
            .find_map(|e| match e {
                Effect::Complete(o) => Some(o.clone()),
                _ => None,
            })
            .expect("complete");
        assert_eq!(done.qid, qid);
        assert!(done.failure.is_none());
        assert_eq!(done.items.len(), 1);
        assert_eq!(done.latency_us, 150);
        assert_eq!(done.hops, 1);
    }

    /// Tracked forwards arm a watch; the ack from the receiver disarms
    /// it; an unacked forward retries on tick and eventually fails.
    #[test]
    fn watch_arms_retries_and_exhausts() {
        let dir = directory(&["a", "b"]);
        let mut a = seller_node(0, &dir);
        a.set_retry(Some(RetryPolicy {
            timeout_us: 1_000,
            max_retries: 1,
        }));
        let qid = QueryId::new(3);
        let mut fx = Vec::new();
        a.tracked_send(
            Some(qid),
            1,
            Frame::Mqp(MqpFrame {
                qid: Some(qid),
                meter: Meter {
                    submitted_at: 0,
                    hops: 1,
                    mqp_bytes: 10,
                    retries: 0,
                },
                envelope: Mqp::new(Plan::display("a#3", Plan::url("mqp://b/"))).to_wire(),
            }),
            0,
            0,
            &mut fx,
        );
        assert!(matches!(fx[0], Effect::SetTimer { at: 1_000, .. }));
        assert_eq!(a.next_deadline(), Some(1_000));
        // Nothing expired yet.
        assert!(a.on_tick(500).is_empty());
        // First expiry: a retry (re-sent, re-armed).
        let fx = a.on_tick(1_000);
        assert!(fx.iter().any(|e| matches!(e, Effect::Retried { .. })));
        assert!(fx.iter().any(|e| matches!(e, Effect::Send { to: 1, .. })));
        assert_eq!(a.next_deadline(), Some(2_000));
        // Second expiry: budget spent, explicit failure.
        let fx = a.on_tick(2_000);
        let done = fx
            .iter()
            .find_map(|e| match e {
                Effect::Complete(o) => Some(o.clone()),
                _ => None,
            })
            .expect("failure outcome");
        assert_eq!(done.qid, qid);
        assert!(done.failure.as_deref().unwrap().contains("retries"));
        assert_eq!(done.retries, 1);
        assert_eq!(a.next_deadline(), None);
    }

    /// An ack from the watched hop disarms; an ack from anyone else
    /// does not.
    #[test]
    fn ack_bookkeeping_is_hop_precise() {
        let dir = directory(&["a", "b", "c"]);
        let mut a = seller_node(0, &dir);
        a.set_retry(Some(RetryPolicy::default()));
        let qid = QueryId::new(1);
        let mut fx = Vec::new();
        a.tracked_send(
            Some(qid),
            1,
            Frame::Mqp(MqpFrame {
                qid: Some(qid),
                meter: Meter::default(),
                envelope: Mqp::new(Plan::display("a#1", Plan::url("mqp://b/"))).to_wire(),
            }),
            0,
            0,
            &mut fx,
        );
        a.on_ack(2, qid); // wrong hop: still armed
        assert!(a.next_deadline().is_some());
        a.on_ack(1, qid); // the watched hop: disarmed
        assert!(a.next_deadline().is_none());
    }

    /// `mark_done` suppresses both the watch and future tracking.
    #[test]
    fn done_queries_send_untracked() {
        let dir = directory(&["a", "b"]);
        let mut a = seller_node(0, &dir);
        a.set_retry(Some(RetryPolicy::default()));
        let qid = QueryId::new(9);
        a.mark_done(qid);
        let mut fx = Vec::new();
        a.tracked_send(
            Some(qid),
            1,
            Frame::Mqp(MqpFrame {
                qid: Some(qid),
                meter: Meter::default(),
                envelope: Mqp::new(Plan::display("a#9", Plan::url("mqp://b/"))).to_wire(),
            }),
            0,
            0,
            &mut fx,
        );
        // Send happens (duplicate traffic is real), but no timer.
        assert_eq!(fx.len(), 1);
        assert!(matches!(fx[0], Effect::Send { .. }));
    }

    /// Registration frames apply to the catalog and surface as effects.
    #[test]
    fn registration_applies_and_reports() {
        let dir = directory(&["a", "b"]);
        let mut a = PeerNode::new(0, Peer::new("a", ns()), Arc::clone(&dir));
        let entry = CatalogEntry::base("b", pdx_cds());
        let fx = a.on_message(1, &Frame::Register(entry.clone()).encode(), 5);
        assert_eq!(fx, vec![Effect::Register(entry.clone())]);
        assert_eq!(a.peer().catalog().entries().len(), 1);
    }

    // ------------------------------------------------------------------
    // Multi-origin binding defense (DESIGN.md §14)
    // ------------------------------------------------------------------

    /// Delivers every `Send` effect until the network drains, dropping
    /// non-transport effects — a four-line driver for defense tests.
    fn drain(nodes: &mut [PeerNode], seed: Vec<(NodeId, Effect)>, now: u64) {
        let mut queue: Vec<(NodeId, NodeId, Vec<u8>)> = seed
            .into_iter()
            .filter_map(|(from, e)| match e {
                Effect::Send { to, bytes } => Some((from, to, bytes)),
                _ => None,
            })
            .collect();
        while !queue.is_empty() {
            let (from, to, bytes) = queue.remove(0);
            for e in nodes[to].on_message(from, &bytes, now) {
                if let Effect::Send { to: next, bytes } = e {
                    queue.push((to, next, bytes));
                }
            }
        }
    }

    /// Registers `entry` at verifier node 0 and drains the resulting
    /// verification round (probes out, answers back, verdicts applied).
    fn register_at_verifier(nodes: &mut [PeerNode], from: NodeId, entry: CatalogEntry, now: u64) {
        let fx = nodes[0].on_message(from, &Frame::Register(entry).encode(), now);
        let seed = fx.into_iter().map(|e| (0, e)).collect();
        drain(nodes, seed, now);
    }

    /// A seller node holding `items` for the Portland-CDs area.
    fn defense_seller(node: NodeId, dir: &Arc<Directory>, items: &[&str]) -> PeerNode {
        let mut p = Peer::new(dir.id_of(node), ns());
        p.add_collection("stock", pdx_cds(), items.iter().map(|s| parse(s).unwrap()));
        PeerNode::new(node, p, Arc::clone(dir))
    }

    /// End-to-end verification rounds at a defended verifier: honest
    /// mirrors with identical answers stay trusted; a hijacker serving
    /// different data for the same area draws strikes on every
    /// conflicting registration and lands in quarantine, after which
    /// bindings stop offering it.
    #[test]
    fn conflicting_registrations_verify_and_quarantine_the_hijacker() {
        use mqp_catalog::TrustLevel;
        let dir = directory(&["verifier", "honest", "mirror", "hijack"]);
        let mut nodes = vec![
            {
                let mut p = Peer::new("verifier", ns());
                p.enable_defense();
                PeerNode::new(0, p, Arc::clone(&dir))
            },
            defense_seller(1, &dir, &["<item><t>A</t></item>", "<item><t>B</t></item>"]),
            defense_seller(2, &dir, &["<item><t>A</t></item>", "<item><t>B</t></item>"]),
            defense_seller(3, &dir, &["<item><t>X</t></item>"]),
        ];
        let honest = CatalogEntry::base("honest", pdx_cds());
        let mirror = CatalogEntry::base("mirror", pdx_cds());
        let hijack = CatalogEntry::base("hijack", pdx_cds());
        // Lone claimant: no conflict, no round.
        register_at_verifier(&mut nodes, 1, honest, 1_000);
        assert!(nodes[0].rounds.is_empty() && nodes[0].verify.is_empty());
        // Second claimant with identical data: a round runs, both clear.
        register_at_verifier(&mut nodes, 2, mirror, 2_000);
        let book = nodes[0].peer().catalog().trust();
        assert_eq!(book.level_of(&ServerId::new("honest")), TrustLevel::Trusted);
        assert_eq!(book.level_of(&ServerId::new("mirror")), TrustLevel::Trusted);
        // The hijacker's divergent answers draw a strike per round.
        register_at_verifier(&mut nodes, 3, hijack.clone(), 3_000);
        assert_eq!(
            nodes[0]
                .peer()
                .catalog()
                .trust()
                .level_of(&ServerId::new("hijack")),
            TrustLevel::Probation
        );
        register_at_verifier(&mut nodes, 3, hijack, 4_000);
        let book = nodes[0].peer().catalog().trust();
        assert_eq!(
            book.level_of(&ServerId::new("hijack")),
            TrustLevel::Quarantined
        );
        // Honest claimants cleared again each round.
        assert_eq!(book.level_of(&ServerId::new("honest")), TrustLevel::Trusted);
        assert_eq!(book.level_of(&ServerId::new("mirror")), TrustLevel::Trusted);
        assert!(nodes[0].rounds.is_empty() && nodes[0].verify.is_empty());
        // The quarantined claimant vanishes from fresh bindings while
        // clean alternatives survive.
        let binding = nodes[0].peer().catalog().bind_area(&pdx_cds());
        assert!(binding
            .alternatives
            .iter()
            .all(|a| a.servers.iter().all(|(s, _)| *s != ServerId::new("hijack"))));
        assert!(!binding.alternatives.is_empty());
    }

    /// The laundering fix end-to-end: trust transitions are journaled,
    /// so a quarantined hijacker stays quarantined across the
    /// verifier's crash/recovery even though the WAL also replays the
    /// hijacker's (re-admitting) registrations.
    #[test]
    fn quarantine_survives_verifier_crash_and_recovery() {
        use mqp_catalog::{DurableCatalog, MemDisk, SharedDisk, TrustLevel};
        let dir = directory(&["verifier", "honest", "mirror", "hijack"]);
        let mut nodes = vec![
            {
                let mut p = Peer::new("verifier", ns());
                p.enable_defense();
                p.enable_durability(DurableCatalog::new(SharedDisk::new(MemDisk::new())));
                PeerNode::new(0, p, Arc::clone(&dir))
            },
            defense_seller(1, &dir, &["<item><t>A</t></item>", "<item><t>B</t></item>"]),
            defense_seller(2, &dir, &["<item><t>A</t></item>", "<item><t>B</t></item>"]),
            defense_seller(3, &dir, &["<item><t>X</t></item>"]),
        ];
        register_at_verifier(
            &mut nodes,
            1,
            CatalogEntry::base("honest", pdx_cds()),
            1_000,
        );
        register_at_verifier(
            &mut nodes,
            2,
            CatalogEntry::base("mirror", pdx_cds()),
            2_000,
        );
        let hijack = CatalogEntry::base("hijack", pdx_cds());
        register_at_verifier(&mut nodes, 3, hijack.clone(), 3_000);
        register_at_verifier(&mut nodes, 3, hijack.clone(), 4_000);
        assert_eq!(
            nodes[0]
                .peer()
                .catalog()
                .trust()
                .level_of(&ServerId::new("hijack")),
            TrustLevel::Quarantined
        );
        // Power loss at the verifier, then recovery from the journal.
        nodes[0].crash();
        let fx = nodes[0].recover(5_000);
        assert!(fx.iter().any(|e| matches!(e, Effect::Recovered(_))));
        let book = nodes[0].peer().catalog().trust();
        assert!(book.is_enabled(), "defense must re-arm after recovery");
        assert_eq!(
            book.level_of(&ServerId::new("hijack")),
            TrustLevel::Quarantined
        );
        // And the hijacker cannot launder itself with a fresh rereg:
        // the replayed strikes keep outweighing it.
        register_at_verifier(&mut nodes, 3, hijack, 6_000);
        assert_eq!(
            nodes[0]
                .peer()
                .catalog()
                .trust()
                .level_of(&ServerId::new("hijack")),
            TrustLevel::Quarantined
        );
    }
}
