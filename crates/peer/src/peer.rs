//! The peer node: local store + catalog + processor, implementing
//! `ServerContext`.

use std::cell::Cell;
use std::sync::Arc;

use mqp_algebra::plan::{Plan, UrlRef, UrnRef};
use mqp_catalog::durable::{CatalogOp, DurableCatalog, RecoveryReport};
use mqp_catalog::{Catalog, CatalogEntry, ConflictClass, Level, ServerId, TrustLevel};
use mqp_core::{Action, Cond, Policy, Processor, RuleCtx, ServerContext, VisitRecord};
use mqp_namespace::{CategoryPath, InterestArea, Namespace, Urn};
use mqp_xml::Element;

use crate::store::{Collection, LocalStore};

/// A peer in the MQP network. See the crate docs for the role model.
#[derive(Debug, Clone)]
pub struct Peer {
    id: ServerId,
    store: LocalStore,
    catalog: Catalog,
    /// Shared: every peer in a world references the same namespace, so
    /// 100k peers hold 100k `Arc` pointers, not 100k hierarchy copies.
    namespace: Arc<Namespace>,
    processor: Processor,
    /// Last-resort route when the catalog knows nothing (the hardwired
    /// bootstrap server of §3.2).
    default_route: Option<ServerId>,
    /// Simulated clock, set by the harness before each processing step.
    clock_us: Cell<u64>,
    /// Crash-consistent catalog journal (DESIGN.md §12). `None` = the
    /// legacy volatile peer: a kill models an interface outage and the
    /// catalog survives in memory, which is what the pre-durability
    /// tests and golden traces pin.
    durable: Option<DurableCatalog>,
    /// Multi-origin binding defense armed (DESIGN.md §14). Kept
    /// alongside the trust book's own flag so recovery from a crash can
    /// re-arm the recovered book — otherwise a quarantined hijacker
    /// could launder its binding through crash/rejoin.
    defense: bool,
}

impl Peer {
    /// Creates a peer with an empty store and catalog. Pass an
    /// `Arc<Namespace>` to share one namespace across peers (a plain
    /// [`Namespace`] converts implicitly).
    pub fn new(id: impl Into<ServerId>, namespace: impl Into<Arc<Namespace>>) -> Self {
        Peer {
            id: id.into(),
            store: LocalStore::new(),
            catalog: Catalog::new(),
            namespace: namespace.into(),
            processor: Processor::default(),
            default_route: None,
            clock_us: Cell::new(0),
            durable: None,
            defense: false,
        }
    }

    /// Sets the processing policy; returns `self` for chaining.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.processor = Processor::new(policy);
        self
    }

    /// Sets the bootstrap route; returns `self` for chaining.
    pub fn with_default_route(mut self, to: impl Into<ServerId>) -> Self {
        self.default_route = Some(to.into());
        self
    }

    /// This peer's id.
    pub fn id(&self) -> &ServerId {
        &self.id
    }

    /// The bootstrap route, if configured.
    pub fn default_route(&self) -> Option<&ServerId> {
        self.default_route.as_ref()
    }

    /// The namespace this peer knows (category-server role, §3.5).
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// The local store.
    pub fn store(&self) -> &LocalStore {
        &self.store
    }

    /// The catalog (mutable, for registration and cache updates).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The processor.
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// Installs hot-reloaded policy rules on the processor (the
    /// `policy` wire frame lands here). The base [`Policy`] and the
    /// compile cache are untouched; an empty set restores pure
    /// base-policy behavior.
    pub fn set_rules(&mut self, rules: mqp_core::RuleSet) {
        self.processor.set_rules(rules);
    }

    /// Sets the simulated clock (harness use).
    pub fn set_clock(&self, us: u64) {
        self.clock_us.set(us);
    }

    // ------------------------------------------------------------------
    // Durability (DESIGN.md §12)
    // ------------------------------------------------------------------

    /// Turns on catalog durability over `journal`, seeding it with a
    /// snapshot of whatever the catalog already holds. From here on,
    /// registrations arriving through [`Peer::register_entry`],
    /// [`Peer::add_collection`] and [`Peer::publish_urn`] are journaled;
    /// direct [`Peer::catalog_mut`] mutations are deliberately not (the
    /// volatile escape hatch for caches and test scaffolding).
    pub fn enable_durability(&mut self, mut journal: DurableCatalog) {
        // Seeding can only fail on a faulty disk; the journal recovers
        // whatever prefix survives, which is the contract anyway.
        let _ = journal.seed(&self.catalog);
        self.durable = Some(journal);
    }

    /// The catalog journal, if durability is on.
    pub fn durable(&self) -> Option<&DurableCatalog> {
        self.durable.as_ref()
    }

    /// Journals one op (best-effort past the fsync retry budget:
    /// degraded durability must not take the live peer down) and
    /// compacts when the WAL has grown past its threshold.
    fn journal(&mut self, op: CatalogOp) {
        if let Some(d) = self.durable.as_mut() {
            let _ = d.log(&op);
            let _ = d.maybe_compact(&self.catalog);
        }
    }

    /// Registers an entry in the catalog, journaling it when durable —
    /// the path `reg`/`rereg` frames take at the receiving peer.
    pub fn register_entry(&mut self, entry: CatalogEntry) {
        self.catalog.register(entry.clone());
        self.journal(CatalogOp::Register(entry));
    }

    /// Simulated power loss. With a journal: the disk crashes (unsynced
    /// WAL tail lost, possibly torn) and the in-memory catalog is
    /// dropped; returns `true`. Without one this is a no-op returning
    /// `false` — the legacy kill models an interface outage, with
    /// protocol state surviving in memory.
    pub fn crash_volatile(&mut self) -> bool {
        let Some(d) = self.durable.as_mut() else {
            return false;
        };
        d.crash();
        self.catalog = Catalog::new();
        true
    }

    /// Crash recovery: replays snapshot + WAL into a fresh catalog,
    /// truncating at the first torn record (prefix consistency). `None`
    /// when durability is off or the disk is unreadable.
    pub fn recover_catalog(&mut self) -> Option<RecoveryReport> {
        let d = self.durable.as_mut()?;
        let (catalog, report) = d.recover().ok()?;
        self.catalog = catalog;
        // Re-arm the defense: the recovered book carries the journaled
        // trust records, but `enabled` is peer configuration, not
        // catalog state.
        if self.defense {
            self.catalog.trust_mut().set_enabled(true);
        }
        Some(report)
    }

    // ------------------------------------------------------------------
    // Multi-origin binding defense (DESIGN.md §14)
    // ------------------------------------------------------------------

    /// Arms the multi-origin binding defense: registrations are scored
    /// for provenance, conflicting claimant sets are verified, and
    /// quarantined servers are shunned by binding/routing. Off by
    /// default — legacy worlds behave exactly as before.
    pub fn enable_defense(&mut self) {
        self.defense = true;
        self.catalog.trust_mut().set_enabled(true);
    }

    /// Whether the defense is armed.
    pub fn defense_enabled(&self) -> bool {
        self.defense
    }

    /// Registers an entry that arrived from transport node `registrar`,
    /// recording provenance in the trust book when the defense is armed.
    /// Returns the contested area key and its full claimant set when the
    /// registration leaves a base-level area with multiple claimants —
    /// the trigger for a verification round.
    pub fn register_entry_from(
        &mut self,
        entry: CatalogEntry,
        registrar: u64,
        now: u64,
    ) -> Option<(String, Vec<ServerId>)> {
        let observed = self.defense && entry.level == Level::Base;
        let server = entry.server.clone();
        let area_key = mqp_namespace::urn::encode_area(&entry.area);
        self.register_entry(entry);
        if !observed {
            return None;
        }
        let n = self
            .catalog
            .trust_mut()
            .observe(&server, registrar, &area_key, now);
        if n < 2 {
            return None;
        }
        let claimants = self.catalog.trust().claimants(&area_key).to_vec();
        Some((area_key, claimants))
    }

    /// Applies one verification round's verdicts to the trust book and
    /// journals every record whose level transitioned, so quarantine
    /// survives crash/recovery (the binding-laundering fix).
    pub fn apply_trust_round(
        &mut self,
        verdicts: &[(ServerId, ConflictClass)],
        now: u64,
    ) -> Vec<(ServerId, TrustLevel, TrustLevel)> {
        let transitions = self.catalog.trust_mut().apply_round(verdicts, now);
        let recs: Vec<_> = transitions
            .iter()
            .filter_map(|(s, _, _)| self.catalog.trust().record(s).cloned())
            .collect();
        for rec in recs {
            self.journal(CatalogOp::Trust(rec));
        }
        transitions
    }

    /// Administrative quarantine (the `quarantine` policy action),
    /// journaled like any other trust transition.
    pub fn quarantine_server(&mut self, server: &ServerId, now: u64) -> bool {
        if !self.catalog.trust_mut().force_quarantine(server, now) {
            return false;
        }
        if let Some(rec) = self.catalog.trust().record(server).cloned() {
            self.journal(CatalogOp::Trust(rec));
        }
        true
    }

    /// What the hot-reloaded rules say to do about a conflicting
    /// claimant: `(quarantine, verify)`. Without any `trust-below` rule
    /// installed the built-in default applies — verify, never summarily
    /// quarantine.
    pub fn trust_decision(&self, subject: &ServerId) -> (bool, bool) {
        let rules = self.processor.rules();
        let has_trust_rules = rules
            .rules
            .iter()
            .any(|r| r.conds.iter().any(|c| matches!(c, Cond::TrustBelow(_))));
        if !has_trust_rules {
            return (false, true);
        }
        let ctx = RuleCtx {
            role: self.id.as_str().to_owned(),
            ..RuleCtx::default()
        }
        .with_trust(self.catalog.trust().level_of(subject));
        let d = rules.decide(&Policy::default(), &ctx);
        (d.quarantine, d.verify)
    }

    /// Prunes Or-alternatives backed by quarantined bindings — exactly
    /// like dead hops (DESIGN.md invariant 7), with a `Distrusted`
    /// provenance record so §5.1 audits stay clean.
    fn prune_distrusted(&self, mqp: &mut mqp_core::Mqp) {
        let book = self.catalog.trust();
        if !book.is_enabled() || book.is_empty() {
            return;
        }
        for q in book.quarantined() {
            // Cheap read-only check first: `plan_mut` invalidates the
            // MQP's cached wire form, so only touch it when the plan
            // actually references the quarantined server.
            let referenced = mqp
                .plan()
                .urls()
                .iter()
                .any(|u| ServerId::from_url(&u.href).is_some_and(|h| h == q));
            if !referenced {
                continue;
            }
            let n = mqp_core::rewrite::prune_server_alternatives(mqp.plan_mut(), &q);
            if n > 0 {
                mqp.record(VisitRecord {
                    server: self.id.clone(),
                    action: Action::Distrusted,
                    detail: format!("pruned {n} alternative(s) backed by {q}"),
                    at: self.clock_us.get(),
                    staleness: 0,
                });
            }
        }
    }

    /// Publishes a collection: stores it and registers this peer as a
    /// base server for its area in the local catalog (self-knowledge —
    /// the peer can then bind interest-area URNs to itself).
    pub fn add_collection(
        &mut self,
        name: &str,
        area: InterestArea,
        items: impl IntoIterator<Item = Element>,
    ) {
        self.store.put(Collection {
            name: name.to_owned(),
            area: area.clone(),
            items: items.into_iter().collect(),
        });
        self.register_entry(CatalogEntry::base(self.id.clone(), area));
    }

    /// Maps a named URN (e.g. `urn:ForSale:Portland-CDs`) to one of this
    /// peer's collections.
    pub fn publish_urn(&mut self, urn: &str, collection: &str) {
        let collection = Some(format!("/data[@id='{collection}']"));
        self.catalog
            .map_urn(urn, self.id.clone(), collection.clone());
        self.journal(CatalogOp::MapUrn {
            urn: urn.to_owned(),
            server: self.id.clone(),
            collection,
        });
    }

    /// The entry another peer should register to know about this peer's
    /// base data.
    pub fn base_entry(&self) -> CatalogEntry {
        CatalogEntry::base(self.id.clone(), self.store.area())
    }

    /// Category-server query (§3.2): immediate subcategories of a
    /// category in a dimension.
    pub fn subcategories(&self, dimension: &str, path: &CategoryPath) -> Vec<CategoryPath> {
        self.namespace
            .dimension(dimension)
            .map(|d| d.subcategory_paths(path))
            .unwrap_or_default()
    }

    /// Processes an MQP envelope at this peer (harness use). With the
    /// defense armed, alternatives backed by quarantined bindings are
    /// pruned before processing.
    pub fn process(&self, mqp: &mut mqp_core::Mqp) -> mqp_core::Outcome {
        self.prune_distrusted(mqp);
        self.processor.process(mqp, self)
    }

    /// Re-resolution after a failed forward: routes `plan` as
    /// [`ServerContext::route`] would, but additionally skipping
    /// `exclude` (the next-hop presumed crashed). Falls back to the
    /// catalog's alternatives for the plan's interest areas — the
    /// mobility argument of §2: any peer can re-route an in-flight MQP.
    pub fn route_excluding(
        &self,
        plan: &Plan,
        visited: &[ServerId],
        exclude: &ServerId,
    ) -> Option<ServerId> {
        let mut avoid: Vec<ServerId> = visited.to_vec();
        if !avoid.contains(exclude) {
            avoid.push(exclude.clone());
        }
        ServerContext::route(self, plan, &avoid)
    }

    /// Decodes the `area` annotation on a URL, if present.
    fn url_area(url: &UrlRef) -> Option<InterestArea> {
        let spec = url.meta.get("area")?;
        mqp_namespace::urn::decode_area(spec).ok()
    }
}

impl ServerContext for Peer {
    fn id(&self) -> ServerId {
        self.id.clone()
    }

    fn now(&self) -> u64 {
        self.clock_us.get()
    }

    fn local_url_data(&self, url: &UrlRef) -> Option<mqp_xml::Batch> {
        let host = ServerId::from_url(&url.href)?;
        if host != self.id {
            return None;
        }
        // Area-scoped references (from interest-area bindings) return
        // only overlapping collections; collection references return
        // that collection; bare references return everything.
        if let Some(area) = Self::url_area(url) {
            return Some(self.store.items_overlapping(&area));
        }
        self.store.items_for(url.collection.as_ref())
    }

    fn bind_urn(&self, urn: &UrnRef) -> Option<(Plan, String, u32)> {
        match &urn.urn {
            Urn::Named { .. } => {
                let hits = self.catalog.resolve_named(&urn.urn);
                if hits.is_empty() {
                    return None;
                }
                let detail = hits
                    .iter()
                    .map(|(s, c)| match c {
                        Some(c) => format!("{}{}", s.to_url(), c),
                        None => s.to_url(),
                    })
                    .collect::<Vec<_>>()
                    .join(" U ");
                let urls: Vec<Plan> = hits
                    .into_iter()
                    .map(|(s, c)| {
                        let mut u = UrlRef::new(s.to_url());
                        if let Some(c) = c {
                            u.collection = mqp_xml::xpath::Path::parse(&c).ok();
                        }
                        Plan::Url(u)
                    })
                    .collect();
                let plan = if urls.len() == 1 {
                    urls.into_iter().next().unwrap()
                } else {
                    Plan::union(urls)
                };
                Some((plan, detail, 0))
            }
            Urn::InterestArea(area) => {
                let binding = self.catalog.bind_area(area);
                let plan = binding.to_plan()?;
                let detail = format!("{} alternative(s) for {}", binding.alternatives.len(), area);
                Some((plan, detail, 0))
            }
        }
    }

    fn route(&self, plan: &Plan, visited: &[ServerId]) -> Option<ServerId> {
        // 1. A remote URL names a server that can definitely make
        //    progress — go there (Figure 4: "forwards the plan to one of
        //    the seller servers").
        for url in plan.urls() {
            if let Some(host) = ServerId::from_url(&url.href) {
                if host != self.id && !visited.contains(&host) {
                    return Some(host);
                }
            }
        }
        // 2. Unbound interest-area URNs: ask the catalog for the best
        //    index/meta-index server for their (unioned) area.
        let mut area = InterestArea::empty();
        for u in plan.urns() {
            if let Some(a) = u.urn.as_area() {
                area = area.union(a);
            }
        }
        if !area.is_empty() {
            if let Some(next) = self.catalog.route_for(&area, visited) {
                return Some(next);
            }
        }
        // 3. Named URNs or nothing better: bootstrap route.
        self.default_route
            .clone()
            .filter(|d| !visited.contains(d) && *d != self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_core::{Mqp, Outcome};
    use mqp_namespace::Hierarchy;
    use mqp_xml::parse;

    fn ns() -> Namespace {
        Namespace::new([
            Hierarchy::new("Location").with(["USA/OR/Portland", "USA/WA/Seattle"]),
            Hierarchy::new("Merchandise").with(["Music/CDs", "Furniture/Chairs"]),
        ])
    }

    fn pdx_cds() -> InterestArea {
        InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]])
    }

    fn seller() -> Peer {
        let mut p = Peer::new("seller-1", ns());
        p.add_collection(
            "cds",
            pdx_cds(),
            [
                parse("<item><title>A</title><price>8</price></item>").unwrap(),
                parse("<item><title>B</title><price>12</price></item>").unwrap(),
            ],
        );
        p.add_collection(
            "chairs",
            InterestArea::parse(&[&["USA/OR/Portland", "Furniture/Chairs"]]),
            [parse("<item><title>armchair</title><price>5</price></item>").unwrap()],
        );
        p
    }

    #[test]
    fn local_url_data_scopes_by_area() {
        let p = seller();
        // Bare self URL: everything.
        let bare = UrlRef::new("mqp://seller-1/");
        assert_eq!(p.local_url_data(&bare).unwrap().len(), 3);
        // Area-scoped: only CDs.
        let mut scoped = UrlRef::new("mqp://seller-1/");
        scoped
            .meta
            .set("area", mqp_namespace::urn::encode_area(&pdx_cds()));
        assert_eq!(p.local_url_data(&scoped).unwrap().len(), 2);
        // Collection reference.
        let by_collection = UrlRef::with_collection("mqp://seller-1/", "/data[@id='chairs']");
        assert_eq!(p.local_url_data(&by_collection).unwrap().len(), 1);
        // Other host: not local.
        let other = UrlRef::new("mqp://elsewhere/");
        assert!(p.local_url_data(&other).is_none());
    }

    #[test]
    fn interest_area_query_completes_locally() {
        let p = seller();
        let urn = Urn::area(pdx_cds());
        let plan = Plan::display(
            "client#0",
            Plan::select("price < 10", Plan::Urn(mqp_algebra::plan::UrnRef::new(urn))),
        );
        let mut mqp = Mqp::new(plan);
        match p.process(&mut mqp) {
            Outcome::Complete { items, .. } => {
                // Only the cheap CD: the armchair (price 5) is outside
                // the query's interest area.
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].field("title").as_deref(), Some("A"));
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn named_urn_binding() {
        let mut p = seller();
        p.publish_urn("urn:ForSale:Portland-CDs", "cds");
        let plan = Plan::display("client#0", Plan::urn("urn:ForSale:Portland-CDs"));
        let mut mqp = Mqp::new(plan);
        match p.process(&mut mqp) {
            Outcome::Complete { items, .. } => assert_eq!(items.len(), 2),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn routing_prefers_remote_url() {
        let p = Peer::new("router", ns()).with_default_route("bootstrap");
        let plan = Plan::select("true", Plan::url("mqp://target/"));
        assert_eq!(p.route(&plan, &[]).unwrap(), ServerId::new("target"));
        // Visited target falls through to default route.
        assert_eq!(
            p.route(&plan, &[ServerId::new("target")]).unwrap(),
            ServerId::new("bootstrap")
        );
    }

    #[test]
    fn routing_uses_catalog_for_area_urns() {
        let mut p = Peer::new("router", ns());
        p.catalog_mut().register(
            CatalogEntry::index("idx-music", InterestArea::parse(&[&["*", "Music"]]))
                .authoritative(),
        );
        let plan = Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds())));
        assert_eq!(p.route(&plan, &[]).unwrap(), ServerId::new("idx-music"));
    }

    #[test]
    fn category_server_role() {
        let p = Peer::new("cat", ns());
        let subs = p.subcategories("Merchandise", &CategoryPath::top());
        let names: Vec<String> = subs.iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["Furniture", "Music"]);
        assert!(p.subcategories("Nope", &CategoryPath::top()).is_empty());
    }

    #[test]
    fn base_entry_reflects_store() {
        let p = seller();
        let e = p.base_entry();
        assert!(e.area.overlaps(&pdx_cds()));
        assert_eq!(e.server, ServerId::new("seller-1"));
    }
}
