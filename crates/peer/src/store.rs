//! The local data store: named collections of XML items, each placed in
//! an interest area.

use std::collections::BTreeMap;

use mqp_namespace::InterestArea;
use mqp_xml::xpath::Path;
use mqp_xml::{Batch, Element};

/// One named collection — the paper's unit of publication: an index
/// entry references it as `(http://host, /data[@id='NAME'])` (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Collection {
    /// Collection identifier (the `@id` in the XPath reference).
    pub name: String,
    /// The interest area the collection's items fall in.
    pub area: InterestArea,
    /// The items, as a shared batch: lookups lend handles out of this
    /// batch instead of cloning the collection.
    pub items: Batch,
}

/// A peer's local collections.
#[derive(Debug, Clone, Default)]
pub struct LocalStore {
    collections: BTreeMap<String, Collection>,
}

impl LocalStore {
    /// Empty store.
    pub fn new() -> Self {
        LocalStore::default()
    }

    /// Adds (or replaces) a collection.
    pub fn put(&mut self, collection: Collection) {
        self.collections.insert(collection.name.clone(), collection);
    }

    /// Appends items to an existing collection (creating it with the
    /// given area if absent).
    pub fn extend(
        &mut self,
        name: &str,
        area: &InterestArea,
        items: impl IntoIterator<Item = Element>,
    ) {
        let c = self
            .collections
            .entry(name.to_owned())
            .or_insert_with(|| Collection {
                name: name.to_owned(),
                area: area.clone(),
                items: Batch::new(),
            });
        c.area = c.area.union(area);
        c.items.extend(items);
    }

    /// A collection by name.
    pub fn get(&self, name: &str) -> Option<&Collection> {
        self.collections.get(name)
    }

    /// All collections, in name order.
    pub fn collections(&self) -> impl Iterator<Item = &Collection> {
        self.collections.values()
    }

    /// Total number of items across collections.
    pub fn len(&self) -> usize {
        self.collections.values().map(|c| c.items.len()).sum()
    }

    /// True when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Union of all collection areas: the peer's *base interest area*.
    pub fn area(&self) -> InterestArea {
        self.collections
            .values()
            .fold(InterestArea::empty(), |acc, c| acc.union(&c.area))
    }

    /// Items behind a URL collection reference: `None` path = all items;
    /// `/data[@id='NAME']` = that collection; any other XPath selects
    /// from the synthetic `<data>` document containing every collection
    /// item.
    ///
    /// The store *lends*: the returned batch shares the collections'
    /// item handles (reference-count bumps). Only the general-XPath
    /// arm, which selects arbitrary *sub*-elements, materializes — a
    /// sub-element has no handle of its own.
    pub fn items_for(&self, collection: Option<&Path>) -> Option<Batch> {
        match collection {
            None => {
                let mut out = Batch::with_capacity(self.len());
                for c in self.collections.values() {
                    out.extend_shared(&c.items);
                }
                Some(out)
            }
            Some(path) => {
                // Fast path: /data[@id='NAME'] — lends the whole
                // collection.
                if let Some(name) = collection_id(path) {
                    return self.get(&name).map(|c| c.items.clone());
                }
                // General: evaluate against <data><collection …>items…</…></data>.
                let mut doc = Element::new("data");
                for c in self.collections.values() {
                    for i in c.items.iter() {
                        doc.push_child(mqp_xml::Node::Element(i.clone()));
                    }
                }
                let sel: Batch = path.select_elements(&doc).into_iter().cloned().collect();
                Some(sel)
            }
        }
    }

    /// Items whose collection area overlaps `area` (lent handles).
    pub fn items_overlapping(&self, area: &InterestArea) -> Batch {
        let mut out = Batch::new();
        for c in self.collections.values() {
            if c.area.overlaps(area) {
                out.extend_shared(&c.items);
            }
        }
        out
    }
}

/// Extracts `NAME` from the canonical `/data[@id='NAME']` reference.
fn collection_id(path: &Path) -> Option<String> {
    if !path.absolute || path.steps.len() != 1 {
        return None;
    }
    let step = &path.steps[0];
    if !matches!(&step.test, mqp_xml::xpath::NodeTest::Name(n) if n.as_str() == "data") {
        return None;
    }
    match step.predicates.as_slice() {
        [mqp_xml::xpath::Predicate::Attr(a, mqp_xml::xpath::Op::Eq, v)] if a.as_str() == "id" => {
            Some(v.clone())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_xml::parse;

    fn store() -> LocalStore {
        let mut s = LocalStore::new();
        s.put(Collection {
            name: "cds".to_owned(),
            area: InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]]),
            items: vec![
                parse("<item><title>A</title><price>8</price></item>").unwrap(),
                parse("<item><title>B</title><price>12</price></item>").unwrap(),
            ]
            .into(),
        });
        s.put(Collection {
            name: "chairs".to_owned(),
            area: InterestArea::parse(&[&["USA/OR/Portland", "Furniture/Chairs"]]),
            items: vec![parse("<item><title>armchair</title></item>").unwrap()].into(),
        });
        s
    }

    #[test]
    fn default_collection_is_everything() {
        let s = store();
        assert_eq!(s.items_for(None).unwrap().len(), 3);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn named_collection_reference() {
        let s = store();
        let p = Path::parse("/data[@id='cds']").unwrap();
        assert_eq!(s.items_for(Some(&p)).unwrap().len(), 2);
        let missing = Path::parse("/data[@id='nope']").unwrap();
        assert!(s.items_for(Some(&missing)).is_none());
    }

    #[test]
    fn general_xpath_reference() {
        let s = store();
        let p = Path::parse("item[price < 10]").unwrap();
        assert_eq!(s.items_for(Some(&p)).unwrap().len(), 1);
    }

    #[test]
    fn area_is_union() {
        let s = store();
        let a = s.area();
        assert!(a.overlaps(&InterestArea::parse(&[&["USA/OR/Portland", "Music"]])));
        assert!(a.overlaps(&InterestArea::parse(&[&["USA/OR/Portland", "Furniture"]])));
        assert!(!a.overlaps(&InterestArea::parse(&[&["France", "*"]])));
    }

    #[test]
    fn items_overlapping_filters_by_area() {
        let s = store();
        let music = InterestArea::parse(&[&["USA/OR", "Music"]]);
        assert_eq!(s.items_overlapping(&music).len(), 2);
        let everything = InterestArea::parse(&[&["USA", "*"]]);
        assert_eq!(s.items_overlapping(&everything).len(), 3);
    }

    #[test]
    fn extend_unions_area() {
        let mut s = store();
        let more = InterestArea::parse(&[&["USA/OR/Eugene", "Music/CDs"]]);
        s.extend(
            "cds",
            &more,
            [parse("<item><title>C</title></item>").unwrap()],
        );
        assert_eq!(s.get("cds").unwrap().items.len(), 3);
        assert!(s.get("cds").unwrap().area.overlaps(&more));
    }
}
