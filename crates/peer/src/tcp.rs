//! The real-socket driver: the same sans-IO [`PeerNode`]s the
//! simulator and the [`ThreadedCluster`](crate::cluster::ThreadedCluster)
//! run, each on its own OS thread behind a real TCP listener, talking
//! [`wire`](crate::wire) frames wrapped in the length-prefixed
//! [`framing`](crate::framing) grammar over loopback (or any) sockets.
//!
//! Where the threaded cluster's mpsc mesh gives every message free,
//! lossless, infinitely-buffered delivery, this driver gets only what
//! TCP gives a real deployment — and fills the gap the way a real
//! deployment would (DESIGN.md §11):
//!
//! * **Framing.** A connection is a byte stream; each encoded frame
//!   travels behind a 4-byte length prefix and an incremental
//!   [`FrameDecoder`] reassembles it regardless of how the kernel
//!   splits reads.
//! * **Attribution.** Wire frames carry no sender address (the mpsc
//!   `Envelope` did), so the first frame on every connection is a
//!   `hello` declaring the caller's [`NodeId`]; everything else the
//!   connection delivers is attributed to that node.
//! * **Connection lifecycle.** Links are lazy, unidirectional, and
//!   self-healing: a peer connects to a destination only when it has a
//!   frame for it, and a failed connect or dropped connection moves the
//!   link to a jittered exponential-backoff [`Retrier`] before the next
//!   attempt. Replies travel on the *replier's* own outbound link,
//!   never back down the inbound connection.
//! * **Backpressure.** Write queues are bounded and drop-newest: a slow
//!   or dead destination costs the sender a counter
//!   ([`SocketStats::dropped_backpressure`]), never a blocked protocol
//!   thread. Retry watches — the protocol's own machinery — recover
//!   whatever the transport sheds.
//! * **Churn.** [`TcpCluster::kill`] models a network-interface cut:
//!   the listener closes, every connection drops, queued frames are
//!   abandoned — but a volatile `PeerNode` (watches included) survives,
//!   so [`TcpCluster::restart`] brings the peer back on a fresh port
//!   and pending retries fire immediately. A *durable* peer (one with
//!   [`Peer::enable_durability`]) additionally models process death:
//!   kill wipes its in-memory catalog, and restart replays the WAL
//!   through the shared recovery state machine and re-registers the
//!   surviving bindings over `rereg` frames. This mirrors the
//!   simulator's `fail`/`recover`, which is what keeps the three
//!   drivers equivalent under churn.
//!
//! Accounting is exact: every frame a peer hands the transport lands in
//! precisely one of `frames_sent`, `dropped_backpressure`,
//! `dropped_disconnected`, `abandoned`, or the live queue — the
//! [`SocketStats::balances`] identity, asserted by the socket soak at
//! scale.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mqp_algebra::plan::Plan;
use mqp_catalog::ServerId;
use mqp_core::{Mqp, QueryId, QueryOutcome};
use mqp_net::{NodeId, Retrier, SocketStats};

use crate::framing::{encode_frame, FrameDecoder};
use crate::node::{Directory, Effect, PeerNode, RetryPolicy};
use crate::peer::Peer;
use crate::wire::Frame;

/// Tuning knobs for a [`TcpCluster`]. The defaults suit loopback
/// clusters from a handful to several hundred peers.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Retry policy installed on every peer (None: no watches).
    pub retry: Option<RetryPolicy>,
    /// Frames a single link buffers before drop-newest kicks in.
    pub write_queue_cap: usize,
    /// Consecutive failed connects before a link gives up and drops
    /// frames as `dropped_disconnected` instead of queueing (0: never
    /// give up — churn-tolerant, the default).
    pub max_link_attempts: u32,
    /// First reconnect delay.
    pub backoff_base: Duration,
    /// Reconnect delay ceiling.
    pub backoff_cap: Duration,
    /// Budget for one blocking connect attempt.
    pub connect_timeout: Duration,
    /// How long a stopping peer keeps listening for stragglers after
    /// the last frame it processed (the shutdown drain window).
    pub drain_quiet: Duration,
    /// Modeled per-envelope service time for `mqp` frames (mirrors
    /// `ThreadedCluster::with_config`).
    pub service_delay: Duration,
    /// Seed decorrelating reconnect jitter across links.
    pub seed: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            retry: None,
            write_queue_cap: 1024,
            max_link_attempts: 0,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(250),
            connect_timeout: Duration::from_millis(100),
            drain_quiet: Duration::from_millis(50),
            service_delay: Duration::ZERO,
            seed: 0x5eed_50c7,
        }
    }
}

/// Where each node is listening *right now*. Slots go empty when a peer
/// is killed and are republished (with a fresh port) on restart, so
/// connectors always dial the current incarnation. Shared by every peer
/// thread and the client — this is addressing configuration, the
/// socket-world analogue of the threaded mesh's channel vector.
#[derive(Clone)]
pub struct AddrTable {
    slots: Arc<Vec<Mutex<Option<SocketAddr>>>>,
}

impl AddrTable {
    fn new(n: usize) -> Self {
        AddrTable {
            slots: Arc::new((0..n).map(|_| Mutex::new(None)).collect()),
        }
    }

    fn publish(&self, node: NodeId, addr: SocketAddr) {
        *self.slots[node].lock().unwrap() = Some(addr);
    }

    fn unpublish(&self, node: NodeId) {
        *self.slots[node].lock().unwrap() = None;
    }

    /// The node's current listen address, if it is up.
    pub fn get(&self, node: NodeId) -> Option<SocketAddr> {
        *self.slots[node].lock().unwrap()
    }
}

/// Shared atomic counters behind [`SocketStats`], plus the live queue
/// gauge that closes the balance identity mid-run.
#[derive(Default)]
struct Counters {
    frames_enqueued: AtomicU64,
    frames_sent: AtomicU64,
    dropped_backpressure: AtomicU64,
    dropped_disconnected: AtomicU64,
    abandoned: AtomicU64,
    bytes_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_received: AtomicU64,
    frames_local: AtomicU64,
    connects: AtomicU64,
    disconnects: AtomicU64,
    retries: AtomicU64,
    queued: AtomicU64,
}

impl Counters {
    fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SocketStats {
        SocketStats {
            frames_enqueued: self.frames_enqueued.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            dropped_backpressure: self.dropped_backpressure.load(Ordering::Relaxed),
            dropped_disconnected: self.dropped_disconnected.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            frames_local: self.frames_local.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

/// Driver-plumbing control messages (kill/restart/stop travel out of
/// band — they model operator actions, not peer traffic).
enum Ctl {
    Kill,
    Restart,
    Stop,
}

/// One lazy outbound connection to a fixed destination, with its
/// bounded write queue and reconnect state.
struct Link {
    to: NodeId,
    conn: Option<Conn>,
    /// Reconnect pacing and the `max_link_attempts` budget; once dead,
    /// enqueues drop as disconnected.
    retry: Retrier,
    /// Framed (length-prefixed) frames awaiting flush.
    queue: VecDeque<Vec<u8>>,
    /// Bytes of `queue.front()` already written (reset on disconnect:
    /// the replacement connection resends the frame from byte 0 and the
    /// old connection's receiver discards the partial tail at EOF).
    cursor: usize,
}

/// An established outbound connection. `hello` flushes before anything
/// queued — it is transport-internal, so it counts in `bytes_sent` but
/// never in the frame identity.
struct Conn {
    stream: TcpStream,
    hello: Vec<u8>,
    hello_cursor: usize,
}

impl Link {
    fn new(to: NodeId, cfg: &TcpConfig, me: NodeId) -> Self {
        Link {
            to,
            conn: None,
            retry: Retrier::new(
                cfg.backoff_base,
                cfg.backoff_cap,
                cfg.seed ^ ((me as u64) << 32) ^ to as u64,
                cfg.max_link_attempts,
            ),
            queue: VecDeque::new(),
            cursor: 0,
        }
    }

    /// Connect if needed, then flush. Returns true on real progress
    /// (connected, bytes moved); failures schedule a retry and return
    /// false so the event loop can idle.
    fn advance(
        &mut self,
        addrs: &AddrTable,
        cfg: &TcpConfig,
        stats: &Counters,
        hello: &[u8],
    ) -> bool {
        if self.retry.is_dead() || self.queue.is_empty() {
            return false;
        }
        if self.conn.is_none() {
            if !self.retry.ready() {
                return false;
            }
            let Some(addr) = addrs.get(self.to) else {
                // Destination is down (no published listener): that is a
                // failed attempt too, otherwise an addr-less link would
                // spin without ever backing off or going dead.
                Counters::add(&stats.disconnects, 1);
                self.note_failure(stats);
                return false;
            };
            match TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream.set_nonblocking(true).expect("set_nonblocking");
                    Counters::add(&stats.connects, 1);
                    self.retry.success();
                    self.cursor = 0;
                    self.conn = Some(Conn {
                        stream,
                        hello: hello.to_vec(),
                        hello_cursor: 0,
                    });
                }
                Err(_) => {
                    Counters::add(&stats.disconnects, 1);
                    self.note_failure(stats);
                    return false;
                }
            }
        }
        match self.pump(stats) {
            Ok(progressed) => progressed,
            Err(()) => {
                self.drop_conn(stats);
                true
            }
        }
    }

    /// Flushes hello then queued frames onto the live connection.
    /// `Err(())` means the connection died (EOF, reset, write error).
    fn pump(&mut self, stats: &Counters) -> Result<bool, ()> {
        let conn = self.conn.as_mut().expect("pump without connection");
        let mut progressed = false;
        // EOF probe: the destination never sends application data on
        // our outbound connection, so any read resolves to "still up"
        // (WouldBlock) or "gone" (EOF / error).
        let mut probe = [0u8; 256];
        loop {
            match conn.stream.read(&mut probe) {
                Ok(0) => return Err(()),
                Ok(_) => continue, // stray bytes: ignore, it is our send channel
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        while conn.hello_cursor < conn.hello.len() {
            match conn.stream.write(&conn.hello[conn.hello_cursor..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    conn.hello_cursor += n;
                    Counters::add(&stats.bytes_sent, n as u64);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(progressed),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        while let Some(front) = self.queue.front() {
            match conn.stream.write(&front[self.cursor..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    self.cursor += n;
                    Counters::add(&stats.bytes_sent, n as u64);
                    progressed = true;
                    if self.cursor == front.len() {
                        self.queue.pop_front();
                        self.cursor = 0;
                        Counters::add(&stats.frames_sent, 1);
                        stats.queued.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        Ok(progressed)
    }

    fn drop_conn(&mut self, stats: &Counters) {
        self.conn = None;
        self.cursor = 0; // resend the interrupted frame whole
        Counters::add(&stats.disconnects, 1);
        self.note_failure(stats);
    }

    fn note_failure(&mut self, stats: &Counters) {
        if self.retry.failure() {
            // Budget exhausted: shed the queue as disconnected. This
            // fires once — a dead link never advances again.
            let n = self.queue.len() as u64;
            self.queue.clear();
            self.cursor = 0;
            Counters::add(&stats.dropped_disconnected, n);
            stats.queued.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Tear down at kill/shutdown: whatever is still queued is
    /// abandoned, never silently lost from the identity.
    fn abandon(&mut self, stats: &Counters) {
        if self.conn.take().is_some() {
            Counters::add(&stats.disconnects, 1);
        }
        let n = self.queue.len() as u64;
        self.queue.clear();
        self.cursor = 0;
        Counters::add(&stats.abandoned, n);
        stats.queued.fetch_sub(n, Ordering::Relaxed);
    }
}

/// An accepted connection being decoded; `from` is set by its hello.
struct Inbound {
    stream: TcpStream,
    decoder: FrameDecoder,
    from: Option<NodeId>,
}

/// Everything one peer thread owns: the protocol core plus its sockets.
struct PeerThread {
    node: PeerNode,
    me: NodeId,
    addrs: AddrTable,
    ctl: Receiver<Ctl>,
    outcomes: Sender<QueryOutcome>,
    stats: Arc<Counters>,
    cfg: TcpConfig,
    /// Pre-framed hello announcing this peer, sent first on every
    /// outbound connection.
    hello: Vec<u8>,
    epoch: Instant,
    listener: Option<TcpListener>,
    inbound: Vec<Inbound>,
    links: HashMap<NodeId, Link>,
    /// Self-sends: effects addressed to this very node short-circuit
    /// here instead of dialing our own listener.
    local: VecDeque<Vec<u8>>,
    down: bool,
    stopping: bool,
    last_activity: Instant,
}

impl PeerThread {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn run(mut self) {
        // Consecutive no-progress iterations; ramps the idle sleep so a
        // soak's worth of mostly-idle peers doesn't saturate a small
        // machine with kilohertz polling, while a busy peer still spins
        // at full speed.
        let mut idle_streak: u64 = 0;
        loop {
            let mut progressed = false;
            loop {
                match self.ctl.try_recv() {
                    Ok(Ctl::Kill) => {
                        self.go_down();
                        progressed = true;
                    }
                    Ok(Ctl::Restart) => {
                        self.come_up();
                        progressed = true;
                    }
                    Ok(Ctl::Stop) => {
                        self.begin_stop();
                        progressed = true;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        // The cluster handle is gone: nothing can ever
                        // restart or stop us cleanly, so drain and exit.
                        if !self.stopping {
                            self.begin_stop();
                        }
                        break;
                    }
                }
            }
            if self.down {
                if self.stopping {
                    return; // nothing to drain: links died at kill
                }
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            while let Some(bytes) = self.local.pop_front() {
                progressed = true;
                self.dispatch(self.me, &bytes);
            }
            progressed |= self.accept_new();
            progressed |= self.read_inbound();
            progressed |= self.advance_links();
            let now = self.now_us();
            if self.node.next_deadline().is_some_and(|d| d <= now) {
                let effects = self.node.on_tick(now);
                self.apply(effects);
                progressed = true;
            }
            if self.stopping
                && self.local.is_empty()
                && self.last_activity.elapsed() >= self.cfg.drain_quiet
            {
                self.finish();
                return;
            }
            if progressed {
                idle_streak = 0;
            } else {
                idle_streak += 1;
                std::thread::sleep(Duration::from_micros((500 * idle_streak).min(5_000)));
            }
        }
    }

    /// A stop was seen (framed from the front-end, or out-of-band).
    /// Restart the quiet clock so the peer keeps draining stragglers
    /// for at least `drain_quiet` — this is the ordering guarantee that
    /// no outcome already in flight is lost at teardown.
    fn begin_stop(&mut self) {
        self.stopping = true;
        self.last_activity = Instant::now();
    }

    /// Final flush: give outbound queues a bounded chance to empty,
    /// then abandon the rest and account for it.
    fn finish(&mut self) {
        let deadline = Instant::now() + Duration::from_millis(200);
        loop {
            let mut pending = false;
            for link in self.links.values_mut() {
                link.advance(&self.addrs, &self.cfg, &self.stats, &self.hello);
                pending |= !link.queue.is_empty();
            }
            if !pending || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        self.go_down();
    }

    /// Network interface down: listener closed, address unpublished,
    /// every connection cut, queued frames abandoned. A volatile
    /// `PeerNode` — store, catalog, and retry watches — is untouched,
    /// exactly like the simulator's `fail`; a durable peer additionally
    /// loses its in-memory catalog to `PeerNode::crash` (process
    /// death), leaving only what its disk carries.
    fn go_down(&mut self) {
        self.addrs.unpublish(self.me);
        self.listener = None;
        self.inbound.clear();
        for (_, mut link) in self.links.drain() {
            link.abandon(&self.stats);
        }
        self.local.clear();
        self.node.crash();
        self.down = true;
    }

    /// Interface back up, on a fresh port. Watches that expired while
    /// down fire on the first tick after this. A durable peer first
    /// replays its WAL through `PeerNode::recover`; the resulting
    /// `rereg` frames flow through the normal enqueue path, so they
    /// enter the `SocketStats` identity like any other frame.
    fn come_up(&mut self) {
        if !self.down {
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").expect("rebind listener");
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        self.addrs
            .publish(self.me, listener.local_addr().expect("listener addr"));
        self.listener = Some(listener);
        self.down = false;
        let now = self.now_us();
        let effects = self.node.recover(now);
        self.apply(effects);
    }

    fn accept_new(&mut self) -> bool {
        let Some(listener) = &self.listener else {
            return false;
        };
        let mut any = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true).expect("nonblocking conn");
                    stream.set_nodelay(true).ok();
                    self.inbound.push(Inbound {
                        stream,
                        decoder: FrameDecoder::new(),
                        from: None,
                    });
                    any = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        any
    }

    fn read_inbound(&mut self) -> bool {
        let mut progressed = false;
        let mut frames: Vec<(NodeId, Vec<u8>)> = Vec::new();
        let mut i = 0;
        while i < self.inbound.len() {
            let mut dead = false;
            let mut buf = [0u8; 16384];
            loop {
                match self.inbound[i].stream.read(&mut buf) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        Counters::add(&self.stats.bytes_received, n as u64);
                        self.inbound[i].decoder.push(&buf[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            loop {
                match self.inbound[i].decoder.next() {
                    Ok(Some(payload)) => {
                        Counters::add(&self.stats.frames_received, 1);
                        match self.inbound[i].from {
                            None => match Frame::decode(&payload) {
                                // First frame on a connection must be the
                                // hello that attributes the rest.
                                Ok(Frame::Hello { node, .. }) => {
                                    self.inbound[i].from = Some(node);
                                }
                                _ => {
                                    dead = true;
                                    break;
                                }
                            },
                            Some(from) => frames.push((from, payload)),
                        }
                    }
                    Ok(None) => break,
                    // Corrupt length prefix: the decoder refuses to
                    // resynchronize, so the only safe move is to cut the
                    // connection and let retries re-cover.
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                self.inbound.swap_remove(i);
                progressed = true;
            } else {
                i += 1;
            }
        }
        for (from, payload) in frames {
            progressed = true;
            self.dispatch(from, &payload);
        }
        progressed
    }

    fn advance_links(&mut self) -> bool {
        let mut progressed = false;
        for link in self.links.values_mut() {
            progressed |= link.advance(&self.addrs, &self.cfg, &self.stats, &self.hello);
        }
        progressed
    }

    fn dispatch(&mut self, from: NodeId, bytes: &[u8]) {
        self.last_activity = Instant::now();
        match Frame::kind(bytes) {
            "stop" => self.begin_stop(),
            kind => {
                if kind == "mqp" && !self.cfg.service_delay.is_zero() {
                    std::thread::sleep(self.cfg.service_delay);
                }
                let now = self.now_us();
                let effects = self.node.on_message(from, bytes, now);
                self.apply(effects);
            }
        }
    }

    fn apply(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send { to, bytes } => self.enqueue(to, bytes),
                Effect::Ack { to, qid } => self.enqueue(to, Frame::Ack { qid }.encode()),
                Effect::Complete(outcome) => {
                    let _ = self.outcomes.send(outcome);
                }
                Effect::Retried { .. } => {
                    Counters::add(&self.stats.retries, 1);
                }
                // The node's watch list is the timer state; the loop
                // polls `next_deadline`. Registrations and recovery
                // reports are already applied peer-side.
                Effect::SetTimer { .. } | Effect::Register(_) | Effect::Recovered(_) => {}
            }
        }
    }

    fn enqueue(&mut self, to: NodeId, bytes: Vec<u8>) {
        if to == self.me {
            Counters::add(&self.stats.frames_local, 1);
            self.local.push_back(bytes);
            return;
        }
        let link = self
            .links
            .entry(to)
            .or_insert_with(|| Link::new(to, &self.cfg, self.me));
        // Every frame handed to the transport counts as enqueued, even
        // the ones dropped on the spot — that is what makes the balance
        // identity an identity.
        Counters::add(&self.stats.frames_enqueued, 1);
        if link.retry.is_dead() {
            Counters::add(&self.stats.dropped_disconnected, 1);
            return;
        }
        if link.queue.len() >= self.cfg.write_queue_cap {
            Counters::add(&self.stats.dropped_backpressure, 1);
            return;
        }
        Counters::add(&self.stats.queued, 1);
        link.queue.push_back(encode_frame(&bytes));
    }
}

/// A population of peers on real OS threads and real TCP sockets: one
/// worker thread per peer, each behind its own loopback listener, plus
/// a connected [`TcpClient`] front-end at slot `n`.
pub struct TcpCluster {
    threads: Vec<JoinHandle<()>>,
    ctls: Vec<Sender<Ctl>>,
    stats: Arc<Counters>,
    n: usize,
}

impl TcpCluster {
    /// Spawns one socket-backed worker per peer with default tuning.
    /// Peer `i` sits at node `i`; the [`TcpClient`] holds node `n`.
    pub fn new(peers: Vec<Peer>) -> (TcpCluster, TcpClient) {
        Self::with_config(peers, TcpConfig::default())
    }

    /// Spawns with explicit tuning.
    pub fn with_config(peers: Vec<Peer>, cfg: TcpConfig) -> (TcpCluster, TcpClient) {
        let n = peers.len();
        let directory = Arc::new(Directory::new(
            peers.iter().map(|p| p.id().clone()).collect(),
        ));
        let addrs = AddrTable::new(n + 1);
        let (tx, rx) = channel();
        let stats = Arc::new(Counters::default());
        let epoch = Instant::now();
        let mut ctls = Vec::with_capacity(n);
        let threads = peers
            .into_iter()
            .enumerate()
            .map(|(i, peer)| {
                let id = peer.id().clone();
                let mut node = PeerNode::new(i, peer, Arc::clone(&directory));
                node.set_retry(cfg.retry);
                let (ctl_tx, ctl_rx) = channel();
                ctls.push(ctl_tx);
                // Bind on the spawning thread so every peer is reachable
                // the moment the constructor returns.
                let listener = TcpListener::bind("127.0.0.1:0").expect("bind listener");
                listener
                    .set_nonblocking(true)
                    .expect("nonblocking listener");
                addrs.publish(i, listener.local_addr().expect("listener addr"));
                let pt = PeerThread {
                    node,
                    me: i,
                    addrs: addrs.clone(),
                    ctl: ctl_rx,
                    outcomes: tx.clone(),
                    stats: Arc::clone(&stats),
                    cfg: cfg.clone(),
                    hello: encode_frame(&Frame::Hello { node: i, id }.encode()),
                    epoch,
                    listener: Some(listener),
                    inbound: Vec::new(),
                    links: HashMap::new(),
                    local: VecDeque::new(),
                    down: false,
                    stopping: false,
                    last_activity: Instant::now(),
                };
                std::thread::Builder::new()
                    .name(format!("mqp-tcp-{i}"))
                    .spawn(move || pt.run())
                    .expect("spawn tcp worker")
            })
            .collect();
        let client = TcpClient {
            me: n,
            addrs,
            streams: HashMap::new(),
            outcomes: rx,
            next_qid: 0,
            seen: HashSet::new(),
            connect_timeout: cfg.connect_timeout,
        };
        (
            TcpCluster {
                threads,
                ctls,
                stats,
                n,
            },
            client,
        )
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the cluster has no workers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cuts peer `i` off the network (listener closed, connections
    /// dropped, queues abandoned). A volatile peer's protocol state
    /// survives; a durable peer loses its in-memory catalog and keeps
    /// only what its disk carries.
    pub fn kill(&self, i: NodeId) {
        let _ = self.ctls[i].send(Ctl::Kill);
    }

    /// Brings a killed peer back on a fresh port; a durable peer
    /// replays its WAL and re-registers surviving bindings first.
    pub fn restart(&self, i: NodeId) {
        let _ = self.ctls[i].send(Ctl::Restart);
    }

    /// Socket accounting so far.
    pub fn stats(&self) -> SocketStats {
        self.stats.snapshot()
    }

    /// Frames currently sitting in write queues (the `queued` term of
    /// [`SocketStats::balances`]; zero after a drained shutdown).
    pub fn queued(&self) -> u64 {
        self.stats.queued.load(Ordering::Relaxed)
    }

    /// Stops every worker — framed `stop`s first so each peer drains
    /// in-flight frames behind them in order, out-of-band stops as the
    /// backstop for peers currently killed — and joins the threads.
    pub fn shutdown(mut self, client: &mut TcpClient) -> SocketStats {
        for i in 0..self.n {
            let _ = client.stop(i);
        }
        for ctl in &self.ctls {
            let _ = ctl.send(Ctl::Stop);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.stats.snapshot()
    }
}

/// The socket front-end: submits plans over real TCP connections and
/// collects [`QueryOutcome`]s. API-compatible with
/// [`MqpClient`](crate::cluster::MqpClient).
pub struct TcpClient {
    me: NodeId,
    addrs: AddrTable,
    streams: HashMap<NodeId, TcpStream>,
    outcomes: Receiver<QueryOutcome>,
    next_qid: u64,
    /// Outcome dedup: under retries the same query can complete twice.
    seen: HashSet<QueryId>,
    connect_timeout: Duration,
}

impl TcpClient {
    fn stream_to(&mut self, node: NodeId) -> std::io::Result<&mut TcpStream> {
        if !self.streams.contains_key(&node) {
            let addr = self.addrs.get(node).ok_or_else(|| {
                std::io::Error::new(ErrorKind::NotConnected, format!("peer {node} is down"))
            })?;
            let mut stream = TcpStream::connect_timeout(&addr, self.connect_timeout)?;
            stream.set_nodelay(true).ok();
            let hello = Frame::Hello {
                node: self.me,
                id: ServerId::new(format!("front-end-{}", self.me)),
            };
            stream.write_all(&encode_frame(&hello.encode()))?;
            self.streams.insert(node, stream);
        }
        Ok(self.streams.get_mut(&node).expect("stream just inserted"))
    }

    fn send_frame(&mut self, node: NodeId, frame: &Frame) -> bool {
        let bytes = encode_frame(&frame.encode());
        // One reconnect attempt: the cached stream may point at a dead
        // incarnation of a restarted peer.
        for _ in 0..2 {
            match self.stream_to(node).and_then(|s| s.write_all(&bytes)) {
                Ok(()) => return true,
                Err(_) => {
                    self.streams.remove(&node);
                }
            }
        }
        false
    }

    /// Submits `plan` at worker `client` (the peer that becomes the
    /// query's client). Returns the query id; the outcome arrives later
    /// via [`TcpClient::poll`] / [`TcpClient::collect`].
    pub fn submit(&mut self, client: NodeId, plan: &Plan) -> QueryId {
        let qid = QueryId::new(self.next_qid);
        self.next_qid += 1;
        let frame = Frame::Submit {
            qid,
            plan: Mqp::without_original(plan.clone()).to_wire(),
        };
        assert!(self.send_frame(client, &frame), "worker {client} is gone");
        qid
    }

    /// Best-effort framed stop to one worker; false if unreachable
    /// (e.g. currently killed — `TcpCluster::shutdown` covers that out
    /// of band).
    pub fn stop(&mut self, node: NodeId) -> bool {
        self.send_frame(node, &Frame::Stop)
    }

    /// Pushes a policy rule set to one worker over its socket (hot
    /// reload); false if unreachable. In-flight queries keep their
    /// accounting; the worker's next processing step sees the rules.
    pub fn push_policy(&mut self, node: NodeId, rules: &mqp_core::RuleSet) -> bool {
        self.send_frame(node, &Frame::Policy(rules.clone()))
    }

    /// Delivers a catalog registration to one worker over its socket —
    /// the same `Register` wire frame the simulator's
    /// `send_registration` ships, so adversarial registration schedules
    /// run identically on every driver. Returns `false` if unreachable.
    pub fn register(&mut self, node: NodeId, entry: &mqp_catalog::CatalogEntry) -> bool {
        self.send_frame(node, &Frame::Register(entry.clone()))
    }

    /// Non-blocking: the next completed outcome, if any.
    pub fn poll(&mut self) -> Option<QueryOutcome> {
        loop {
            let outcome = self.outcomes.try_recv().ok()?;
            if self.seen.insert(outcome.qid) {
                return Some(outcome);
            }
        }
    }

    /// Blocking: collects `n` distinct outcomes or gives up after
    /// `timeout` without progress.
    pub fn collect(&mut self, n: usize, timeout: Duration) -> Vec<QueryOutcome> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.outcomes.recv_timeout(timeout) {
                Ok(outcome) => {
                    if self.seen.insert(outcome.qid) {
                        out.push(outcome);
                    }
                }
                Err(_) => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_namespace::{Hierarchy, InterestArea, Namespace, Urn};
    use mqp_xml::parse;

    fn ns() -> Namespace {
        Namespace::new([
            Hierarchy::new("Location").with(["USA/OR/Portland"]),
            Hierarchy::new("Merchandise").with(["Music/CDs"]),
        ])
    }

    fn pdx_cds() -> InterestArea {
        InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]])
    }

    fn world() -> Vec<Peer> {
        let client = Peer::new("client", ns()).with_default_route("meta");
        let mut meta = Peer::new("meta", ns());
        let mut s1 = Peer::new("seller-1", ns());
        s1.add_collection(
            "cds",
            pdx_cds(),
            [
                parse("<item><title>A</title><price>8</price></item>").unwrap(),
                parse("<item><title>B</title><price>12</price></item>").unwrap(),
            ],
        );
        let mut s2 = Peer::new("seller-2", ns());
        s2.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><title>C</title><price>9</price></item>").unwrap()],
        );
        meta.catalog_mut().register(s1.base_entry());
        meta.catalog_mut().register(s2.base_entry());
        vec![client, meta, s1, s2]
    }

    #[test]
    fn end_to_end_over_real_sockets() {
        let (cluster, mut client) = TcpCluster::new(world());
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        let qid = client.submit(0, &plan);
        let done = client.collect(1, Duration::from_secs(10));
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert_eq!(q.qid, qid);
        assert!(q.failure.is_none(), "{:?}", q.failure);
        let mut titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
        titles.sort();
        assert_eq!(titles, ["A", "C"]);
        assert!(q.hops >= 3);
        let stats = cluster.shutdown(&mut client);
        assert!(stats.frames_sent > 0);
        assert!(stats.bytes_sent > 0);
        assert!(stats.frames_received > 0);
        assert!(stats.balances(0), "unbalanced: {stats:?}");
    }

    #[test]
    fn many_concurrent_queries_all_complete() {
        let (cluster, mut client) = TcpCluster::new(world());
        let plan = Plan::select(
            "price < 10",
            Plan::Urn(mqp_algebra::plan::UrnRef::new(Urn::area(pdx_cds()))),
        );
        let qids: Vec<QueryId> = (0..24).map(|_| client.submit(0, &plan)).collect();
        let done = client.collect(qids.len(), Duration::from_secs(10));
        assert_eq!(done.len(), qids.len());
        let mut got: Vec<QueryId> = done.iter().map(|q| q.qid).collect();
        got.sort();
        assert_eq!(got, qids);
        for q in &done {
            assert!(q.failure.is_none(), "{:?}", q.failure);
            assert_eq!(q.items.len(), 2);
        }
        let stats = cluster.shutdown(&mut client);
        assert!(stats.balances(0), "unbalanced: {stats:?}");
    }

    /// The shutdown-ordering guarantee: submissions and a stop sent
    /// back-to-back on one connection must all land — the stop drains
    /// behind the submissions, every self-routed delivery included, so
    /// outcomes survive an immediate teardown.
    #[test]
    fn stop_drains_behind_submissions() {
        let mut solo = Peer::new("solo", ns());
        solo.add_collection(
            "cds",
            pdx_cds(),
            [parse("<item><title>A</title><price>8</price></item>").unwrap()],
        );
        let (cluster, mut client) = TcpCluster::new(vec![solo]);
        let k = 8;
        for _ in 0..k {
            client.submit(0, &Plan::url("mqp://solo/"));
        }
        // No collect before shutdown: every delivery is still a
        // self-send queued behind the stop when it arrives.
        let stats = cluster.shutdown(&mut client);
        let done = client.collect(k, Duration::from_millis(100));
        assert_eq!(done.len(), k, "outcomes lost at teardown");
        assert!(stats.frames_local >= k as u64);
        assert!(stats.balances(0), "unbalanced: {stats:?}");
    }

    #[test]
    fn poll_is_nonblocking_and_dedups() {
        let (cluster, mut client) = TcpCluster::new(world());
        assert!(client.poll().is_none());
        let qid = client.submit(0, &Plan::url("mqp://seller-2/"));
        let deadline = Instant::now() + Duration::from_secs(10);
        let outcome = loop {
            if let Some(o) = client.poll() {
                break o;
            }
            assert!(Instant::now() < deadline, "query never completed");
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(outcome.qid, qid);
        cluster.shutdown(&mut client);
    }
}
