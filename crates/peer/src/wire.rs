//! The peer-to-peer wire frame: what actually travels between
//! [`PeerNode`](crate::node::PeerNode)s, on any transport.
//!
//! A frame is one header line (kind + per-query meter) followed by the
//! payload bytes — the serialized MQP envelope for `mqp`, the
//! concatenated result items for `res`, the catalog entry for `reg`.
//! Every frame is plain UTF-8 so any peer can parse it without
//! pre-shared binary schemas, matching the MQP envelope itself.
//!
//! Two byte counts exist per frame and they are deliberately distinct:
//!
//! * [`Envelope::bytes`](mqp_net::threaded::Envelope::bytes) — the real
//!   size, `payload.len()` of the whole frame. The threaded cluster
//!   accounts this.
//! * [`charge`] — the *logical* size the deterministic simulator bills
//!   to the network: the MQP XML length for `mqp` frames, the item
//!   bytes plus a fixed result-envelope overhead for `res`, and the
//!   server-id + encoded-area + fixed overhead for `reg`. These are the
//!   exact formulas the pre-sans-IO harness charged, which is what
//!   keeps the golden traces byte-identical across the refactor.

use mqp_catalog::{CatalogEntry, Level, ServerId};
use mqp_core::{QueryId, RuleSet};
use mqp_namespace::urn::{decode_area, encode_area};
use mqp_net::NodeId;

/// Per-query counters that ride every `mqp`/`res` frame, so any peer —
/// not just the client — can account for the query it is holding. This
/// is the sans-IO replacement for the old harness's central
/// `QueryStats` map: the paper's claim that peers need no distributed
/// state extends to bookkeeping, which travels with the plan.
///
/// One deliberate semantic consequence: under duplication faults each
/// copy of an envelope carries its *own* meter, so a completed query
/// reports the bytes/hops/retries of the copy that finished it — not
/// the sum over every duplicate's wanderings the old central map
/// accumulated. Network-level totals (`NetStats`) still count every
/// copy; only the per-query attribution narrowed. No golden trace
/// observes per-query counters under duplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Meter {
    /// Submission time at the client (µs on the driving clock).
    pub submitted_at: u64,
    /// MQP hops so far (server-to-server forwards, including the final
    /// result delivery).
    pub hops: u64,
    /// Total MQP bytes shipped so far.
    pub mqp_bytes: u64,
    /// Timeout-driven retries so far.
    pub retries: u64,
}

/// A travelling MQP envelope plus its meter.
#[derive(Debug, Clone, PartialEq)]
pub struct MqpFrame {
    /// Query id; `None` for envelopes injected outside a front-end.
    pub qid: Option<QueryId>,
    /// Per-query counters.
    pub meter: Meter,
    /// The serialized MQP envelope (`Mqp::to_wire`).
    pub envelope: String,
}

/// A completed result returning to the query's client.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultFrame {
    /// Query id.
    pub qid: QueryId,
    /// Per-query counters (the result hop already counted).
    pub meter: Meter,
    /// §5.1 audit verdict computed at the completing server.
    pub audit_clean: Option<bool>,
    /// The index/meta server that bound the query's URN (§3.4 cache
    /// learning), if any.
    pub bound_by: Option<ServerId>,
    /// Serialized result items, concatenated.
    pub items: String,
}

/// One wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A travelling MQP envelope.
    Mqp(MqpFrame),
    /// A completed result returning to the client.
    Result(ResultFrame),
    /// Catalog registration (a base/index server announcing itself,
    /// §3.2/§3.3).
    Register(CatalogEntry),
    /// Re-registration after crash recovery: a restarted peer replaying
    /// its WAL announces its surviving bindings again. Semantically a
    /// [`Frame::Register`] (receivers merge identically) under a
    /// distinct tag so experiments can count recovery traffic; charged
    /// like `reg`.
    Rereg(CatalogEntry),
    /// Delivery acknowledgement for the watched forward of `qid`. The
    /// simulator driver short-circuits these (delivery *is* the ack
    /// there); the threaded cluster ships them for real.
    Ack {
        /// The acknowledged query.
        qid: QueryId,
    },
    /// Front-end control: submit the enclosed plan envelope at the
    /// receiving peer under `qid`. Never used by the simulator (whose
    /// driver calls `PeerNode::submit` directly).
    Submit {
        /// Query id allocated by the front-end.
        qid: QueryId,
        /// `Mqp::to_wire` of a bare (untargeted) plan.
        plan: String,
    },
    /// Hot policy reload: install the enclosed rule set on the
    /// receiving peer's processor, replacing whatever was loaded
    /// before (an empty set restores pure base-policy behavior).
    /// Travels on every transport and is charged like `reg` —
    /// policy distribution is catalog-style control traffic.
    Policy(RuleSet),
    /// Front-end control: stop the receiving worker thread.
    Stop,
    /// Connection handshake (stream transports only): the first frame
    /// on every new connection, announcing who is calling. Datagram-ish
    /// transports (the simulator, the threaded mesh) carry the sender
    /// address per message and never send one; a TCP connection has no
    /// such envelope, so `mqp_peer::tcp` attributes everything a
    /// connection delivers to the node its hello declared.
    Hello {
        /// The caller's transport address.
        node: NodeId,
        /// The caller's peer name (diagnostic cross-check; the client
        /// front-end, which has no peer, sends its slot id as text).
        id: ServerId,
    },
}

fn opt_qid(t: &str) -> Result<Option<QueryId>, String> {
    if t == "-" {
        Ok(None)
    } else {
        t.parse::<u64>()
            .map(|q| Some(QueryId::new(q)))
            .map_err(|e| format!("bad qid {t:?}: {e}"))
    }
}

fn num(t: &str) -> Result<u64, String> {
    t.parse::<u64>()
        .map_err(|e| format!("bad number {t:?}: {e}"))
}

fn fmt_qid(q: Option<QueryId>) -> String {
    q.map(|q| q.to_string()).unwrap_or_else(|| "-".to_owned())
}

/// Shared body for `reg`/`rereg`: same field layout, different tag.
fn encode_reg(tag: &str, e: &CatalogEntry) -> String {
    let collection = e.collection.as_deref().unwrap_or("");
    debug_assert!(
        !e.server.as_str().contains('\n') && !collection.contains('\n'),
        "registration fields must be single-line"
    );
    format!(
        "{tag} {} {} {}\n{}\n{}\n{collection}",
        e.level.name(),
        u8::from(e.authoritative),
        u8::from(e.collection.is_some()),
        e.server.as_str(),
        encode_area(&e.area),
    )
}

/// Shared decode for `reg`/`rereg` headers and payloads.
fn decode_reg(tokens: &[&str], payload: &str, header: &str) -> Result<CatalogEntry, String> {
    if tokens.len() < 4 {
        return Err(format!("truncated reg header {header:?}"));
    }
    let level = Level::parse(tokens[1]).ok_or_else(|| format!("bad level {:?}", tokens[1]))?;
    let authoritative = tokens[2] == "1";
    let has_collection = tokens[3] == "1";
    let mut lines = payload.splitn(3, '\n');
    let server = lines.next().ok_or("reg missing server line")?;
    let area_spec = lines.next().ok_or("reg missing area line")?;
    let collection = lines.next().unwrap_or("");
    Ok(CatalogEntry {
        server: ServerId::new(server),
        level,
        area: decode_area(area_spec).map_err(|e| format!("bad area: {e:?}"))?,
        collection: has_collection.then(|| collection.to_owned()),
        authoritative,
    })
}

impl Meter {
    fn encode(&self) -> String {
        format!(
            "{} {} {} {}",
            self.submitted_at, self.hops, self.mqp_bytes, self.retries
        )
    }

    fn decode(tokens: &[&str]) -> Result<Meter, String> {
        if tokens.len() < 4 {
            return Err("truncated meter".to_owned());
        }
        Ok(Meter {
            submitted_at: num(tokens[0])?,
            hops: num(tokens[1])?,
            mqp_bytes: num(tokens[2])?,
            retries: num(tokens[3])?,
        })
    }
}

impl Frame {
    /// Serializes the frame: one header line, then the payload.
    pub fn encode(&self) -> Vec<u8> {
        let out = match self {
            Frame::Mqp(f) => {
                format!(
                    "mqp {} {}\n{}",
                    fmt_qid(f.qid),
                    f.meter.encode(),
                    f.envelope
                )
            }
            Frame::Result(f) => {
                let audit = match f.audit_clean {
                    Some(true) => "1",
                    Some(false) => "0",
                    None => "-",
                };
                let bound = f.bound_by.as_ref().map(|s| s.as_str()).unwrap_or("-");
                debug_assert!(
                    !bound.contains('\n') && f.bound_by.as_ref().map(|s| s.as_str()) != Some("-"),
                    "bound_by must be single-line and not the '-' sentinel"
                );
                format!(
                    "res {} {} {audit} {bound}\n{}",
                    f.qid,
                    f.meter.encode(),
                    f.items
                )
            }
            Frame::Register(e) => encode_reg("reg", e),
            Frame::Rereg(e) => encode_reg("rereg", e),
            Frame::Ack { qid } => format!("ack {qid}\n"),
            Frame::Submit { qid, plan } => format!("sub {qid}\n{plan}"),
            Frame::Policy(rules) => {
                format!("policy {}\n{}", rules.rules.len(), rules.to_wire())
            }
            Frame::Stop => "stop\n".to_owned(),
            Frame::Hello { node, id } => {
                debug_assert!(!id.as_str().contains('\n'), "hello id must be single-line");
                format!("hello {node}\n{}", id.as_str())
            }
        };
        out.into_bytes()
    }

    /// Parses a frame. Errors are protocol bugs — hosts treat them the
    /// way the old harness treated a malformed MQP envelope (panic).
    pub fn decode(bytes: &[u8]) -> Result<Frame, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        let (header, payload) = text
            .split_once('\n')
            .ok_or_else(|| "frame missing header line".to_owned())?;
        let tokens: Vec<&str> = header.split(' ').collect();
        match tokens[0] {
            "mqp" => {
                if tokens.len() < 6 {
                    return Err(format!("truncated mqp header {header:?}"));
                }
                Ok(Frame::Mqp(MqpFrame {
                    qid: opt_qid(tokens[1])?,
                    meter: Meter::decode(&tokens[2..6])?,
                    envelope: payload.to_owned(),
                }))
            }
            "res" => {
                if tokens.len() < 8 {
                    return Err(format!("truncated res header {header:?}"));
                }
                let qid = opt_qid(tokens[1])?.ok_or("result frame requires a qid")?;
                let audit_clean = match tokens[6] {
                    "1" => Some(true),
                    "0" => Some(false),
                    "-" => None,
                    other => return Err(format!("bad audit flag {other:?}")),
                };
                // `bound_by` is the rest of the header line: server ids
                // are free-form, so they go last and may contain spaces.
                let bound = header.splitn(8, ' ').nth(7).unwrap_or("-");
                let bound_by = if bound == "-" {
                    None
                } else {
                    Some(ServerId::new(bound))
                };
                Ok(Frame::Result(ResultFrame {
                    qid,
                    meter: Meter::decode(&tokens[2..6])?,
                    audit_clean,
                    bound_by,
                    items: payload.to_owned(),
                }))
            }
            "reg" => decode_reg(&tokens, payload, header).map(Frame::Register),
            "rereg" => decode_reg(&tokens, payload, header).map(Frame::Rereg),
            "ack" => {
                if tokens.len() < 2 {
                    return Err(format!("truncated ack header {header:?}"));
                }
                let qid = opt_qid(tokens[1])?.ok_or("ack frame requires a qid")?;
                Ok(Frame::Ack { qid })
            }
            "sub" => {
                if tokens.len() < 2 {
                    return Err(format!("truncated sub header {header:?}"));
                }
                let qid = opt_qid(tokens[1])?.ok_or("submit frame requires a qid")?;
                Ok(Frame::Submit {
                    qid,
                    plan: payload.to_owned(),
                })
            }
            "policy" => RuleSet::from_wire(payload)
                .map(Frame::Policy)
                .map_err(|e| format!("bad policy frame: {e}")),
            "stop" => Ok(Frame::Stop),
            "hello" => {
                if tokens.len() < 2 {
                    return Err(format!("truncated hello header {header:?}"));
                }
                let node: NodeId = tokens[1]
                    .parse()
                    .map_err(|e| format!("bad hello node {:?}: {e}", tokens[1]))?;
                Ok(Frame::Hello {
                    node,
                    id: ServerId::new(payload),
                })
            }
            other => Err(format!("unknown frame kind {other:?}")),
        }
    }

    /// The frame kind tag, without a full decode.
    pub fn kind(bytes: &[u8]) -> &str {
        let end = bytes
            .iter()
            .position(|&b| b == b' ' || b == b'\n')
            .unwrap_or(bytes.len());
        std::str::from_utf8(&bytes[..end]).unwrap_or("")
    }
}

/// The logical byte count the simulator charges for a frame — the
/// exact pre-sans-IO `PeerMsg::wire_bytes` formulas (see module docs).
/// Control frames (`ack`, `sub`, `stop`, `hello`) never cross the
/// simulated network and charge nothing.
pub fn charge(bytes: &[u8]) -> usize {
    let Some(header_end) = bytes.iter().position(|&b| b == b'\n') else {
        return 0;
    };
    let payload = &bytes[header_end + 1..];
    match Frame::kind(bytes) {
        "mqp" => payload.len(),
        "res" => payload.len() + 32,
        "reg" | "rereg" => {
            // server-id line + encoded-area line + level/flags overhead.
            let mut lines = payload.split(|&b| b == b'\n');
            let server = lines.next().map(<[u8]>::len).unwrap_or(0);
            let area = lines.next().map(<[u8]>::len).unwrap_or(0);
            server + area + 16
        }
        // Policy pushes are catalog-style control traffic: rule text
        // plus the same fixed overhead a registration pays.
        "policy" => payload.len() + 16,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_namespace::InterestArea;

    fn area() -> InterestArea {
        InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]])
    }

    #[test]
    fn mqp_frame_roundtrips_and_charges_envelope_len() {
        let f = Frame::Mqp(MqpFrame {
            qid: Some(QueryId::new(7)),
            meter: Meter {
                submitted_at: 10,
                hops: 3,
                mqp_bytes: 999,
                retries: 1,
            },
            envelope: "<mqp><plan/></mqp>".to_owned(),
        });
        let bytes = f.encode();
        assert_eq!(Frame::kind(&bytes), "mqp");
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
        assert_eq!(charge(&bytes), "<mqp><plan/></mqp>".len());
    }

    #[test]
    fn anonymous_mqp_frame_roundtrips() {
        let f = Frame::Mqp(MqpFrame {
            qid: None,
            meter: Meter::default(),
            envelope: "<mqp/>".to_owned(),
        });
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn result_frame_roundtrips_and_charges_items_plus_32() {
        for (audit, bound) in [
            (Some(true), Some(ServerId::new("idx-1"))),
            (Some(false), None),
            (None, Some(ServerId::new("meta 0"))), // spaces survive
        ] {
            let f = Frame::Result(ResultFrame {
                qid: QueryId::new(3),
                meter: Meter {
                    submitted_at: 5,
                    hops: 4,
                    mqp_bytes: 100,
                    retries: 0,
                },
                audit_clean: audit,
                bound_by: bound,
                items: "<item/><item/>".to_owned(),
            });
            let bytes = f.encode();
            assert_eq!(Frame::decode(&bytes).unwrap(), f);
            assert_eq!(charge(&bytes), "<item/><item/>".len() + 32);
        }
    }

    #[test]
    fn register_frame_roundtrips_and_matches_legacy_charge() {
        for entry in [
            CatalogEntry::base("seller-1", area()),
            CatalogEntry::index("idx", area()).authoritative(),
            CatalogEntry::base("s", area()).with_collection("/data[@id='245']"),
            CatalogEntry::meta_index("m", InterestArea::parse(&[&["*", "*"]])),
        ] {
            let f = Frame::Register(entry.clone());
            let bytes = f.encode();
            assert_eq!(Frame::decode(&bytes).unwrap(), f);
            let legacy = entry.server.as_str().len() + encode_area(&entry.area).len() + 16;
            assert_eq!(charge(&bytes), legacy, "entry {entry:?}");
        }
    }

    #[test]
    fn rereg_frame_roundtrips_and_charges_like_reg() {
        let entry = CatalogEntry::base("seller-1", area()).with_collection("/data[@id='1']");
        let re = Frame::Rereg(entry.clone()).encode();
        assert_eq!(Frame::kind(&re), "rereg");
        assert_eq!(Frame::decode(&re).unwrap(), Frame::Rereg(entry.clone()));
        // Identical logical charge: recovery traffic bills like first
        // registration.
        assert_eq!(charge(&re), charge(&Frame::Register(entry).encode()));
    }

    #[test]
    fn policy_frame_roundtrips_and_charges_like_reg() {
        use mqp_catalog::Preference;
        use mqp_core::rules::{Cond, Rule, RuleAction};
        let rules = RuleSet::new(vec![
            Rule::new(
                vec![Cond::RoleIs("seller-*".to_owned())],
                vec![RuleAction::Prefer(Preference::Fast), RuleAction::Within(30)],
            ),
            Rule::new(
                vec![Cond::AreaWithin(area()), Cond::BytesOver(4096.0)],
                vec![RuleAction::ForceDefer],
            ),
        ]);
        let f = Frame::Policy(rules.clone());
        let bytes = f.encode();
        assert_eq!(Frame::kind(&bytes), "policy");
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
        // Charged like reg: payload bytes + the same fixed overhead.
        assert_eq!(charge(&bytes), rules.to_wire().len() + 16);

        // The empty set (clears overrides) travels too.
        let clear = Frame::Policy(RuleSet::empty());
        let bytes = clear.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), clear);
        assert_eq!(charge(&bytes), 16);
    }

    #[test]
    fn control_frames_roundtrip_and_charge_zero() {
        for f in [
            Frame::Ack {
                qid: QueryId::new(9),
            },
            Frame::Submit {
                qid: QueryId::new(1),
                plan: "<mqp><plan/></mqp>".to_owned(),
            },
            Frame::Stop,
            Frame::Hello {
                node: 42,
                id: ServerId::new("seller-7"),
            },
        ] {
            let bytes = f.encode();
            assert_eq!(Frame::decode(&bytes).unwrap(), f);
            assert_eq!(charge(&bytes), 0);
        }
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(Frame::decode(b"").is_err());
        assert!(Frame::decode(b"nope 1\n").is_err());
        assert!(Frame::decode(b"mqp x\n").is_err());
        assert!(Frame::decode(&[0xFF, 0xFE]).is_err());
    }
}
