//! Fault-path tests for the TCP driver: kill and restart real peer
//! sockets mid-query and check that the protocol's retry machinery —
//! unchanged from the simulator — completes every completable query,
//! records the detours as `Action::Retried` provenance, and that the
//! transport's frame accounting stays exact through the churn.

use std::time::Duration;

use mqp_algebra::plan::Plan;
use mqp_catalog::durable::{DurableCatalog, MemDisk, SharedDisk};
use mqp_catalog::CatalogEntry;
use mqp_core::QueryId;
use mqp_namespace::{Hierarchy, InterestArea, Namespace};
use mqp_peer::node::RetryPolicy;
use mqp_peer::tcp::{TcpCluster, TcpConfig};
use mqp_peer::Peer;
use mqp_xml::parse;

fn ns() -> Namespace {
    Namespace::new([
        Hierarchy::new("Location").with(["USA/OR/Portland"]),
        Hierarchy::new("Merchandise").with(["Music/CDs"]),
    ])
}

fn pdx_cds() -> InterestArea {
    InterestArea::parse(&[&["USA/OR/Portland", "Music/CDs"]])
}

/// client (node 0), meta (node 1), and two sellers (nodes 2 and 3)
/// holding the same area — so every area/Or query has a live
/// alternative when one seller is down.
fn world() -> Vec<Peer> {
    let client = Peer::new("client", ns()).with_default_route("meta");
    let mut meta = Peer::new("meta", ns());
    let mut s0 = Peer::new("seller-0", ns());
    s0.add_collection(
        "cds",
        pdx_cds(),
        [parse("<item><title>A</title><price>8</price></item>").unwrap()],
    );
    let mut s1 = Peer::new("seller-1", ns());
    s1.add_collection(
        "cds",
        pdx_cds(),
        [parse("<item><title>B</title><price>9</price></item>").unwrap()],
    );
    meta.catalog_mut().register(s0.base_entry());
    meta.catalog_mut().register(s1.base_entry());
    vec![client, meta, s0, s1]
}

fn churn_config() -> TcpConfig {
    TcpConfig {
        retry: Some(RetryPolicy {
            timeout_us: 150_000,
            max_retries: 8,
        }),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(50),
        ..TcpConfig::default()
    }
}

const SELLER_0: usize = 2;

/// Give an async kill/restart control message time to take effect.
fn settle() {
    std::thread::sleep(Duration::from_millis(100));
}

/// A peer killed mid-query is retried around: the watch at the sender
/// times out, prunes the dead alternative (§4.2), re-resolves to the
/// surviving seller, and the query completes — audit-clean, with the
/// detour on the record.
#[test]
fn killed_peer_is_retried_around() {
    let (cluster, mut client) = TcpCluster::with_config(world(), churn_config());
    cluster.kill(SELLER_0);
    settle();
    let or_plan = Plan::or([Plan::url("mqp://seller-0/"), Plan::url("mqp://seller-1/")]);
    let qids: Vec<QueryId> = (0..4).map(|_| client.submit(0, &or_plan)).collect();
    let done = client.collect(qids.len(), Duration::from_secs(30));
    assert_eq!(done.len(), qids.len(), "queries stranded by the kill");
    for q in &done {
        assert!(q.failure.is_none(), "{:?}", q.failure);
        assert!(q.retries >= 1, "no retry recorded for {:?}", q.qid);
        assert_eq!(q.audit_clean, Some(true), "retry detour flagged by audit");
        let titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
        assert_eq!(titles, ["B"], "answer must come from the live seller");
    }
    let stats = cluster.shutdown(&mut client);
    assert!(stats.retries >= qids.len() as u64);
    assert!(stats.balances(0), "unbalanced: {stats:?}");
}

/// A URL query names one specific server: with it down there is no
/// alternative to prune, so the watch resends to the same hop — and
/// when the peer rejoins (fresh port, same protocol state), the resend
/// lands and the query completes.
#[test]
fn restarted_peer_serves_again() {
    let (cluster, mut client) = TcpCluster::with_config(world(), churn_config());
    cluster.kill(SELLER_0);
    settle();
    let qid = client.submit(0, &Plan::url("mqp://seller-0/"));
    // Keep the peer down long enough for at least one timeout to fire.
    std::thread::sleep(Duration::from_millis(300));
    cluster.restart(SELLER_0);
    let done = client.collect(1, Duration::from_secs(30));
    assert_eq!(done.len(), 1, "query stranded across restart");
    let q = &done[0];
    assert_eq!(q.qid, qid);
    assert!(q.failure.is_none(), "{:?}", q.failure);
    let titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
    assert_eq!(titles, ["A"], "restarted seller must serve its own data");
    let stats = cluster.shutdown(&mut client);
    assert!(stats.connects >= 2, "forward and reply links must connect");
    assert!(stats.balances(0), "unbalanced: {stats:?}");
}

/// Kill/restart churn under a continuous stream: every query completes
/// (via the survivor or the rejoined peer) and the accounting identity
/// holds exactly when the dust settles.
#[test]
fn churn_mid_stream_loses_nothing() {
    let (cluster, mut client) = TcpCluster::with_config(world(), churn_config());
    let or_plan = Plan::or([Plan::url("mqp://seller-0/"), Plan::url("mqp://seller-1/")]);
    let total = 30;
    let mut done = Vec::new();
    for i in 0..total {
        client.submit(0, &or_plan);
        if i == 10 {
            cluster.kill(SELLER_0);
        }
        if i == 20 {
            cluster.restart(SELLER_0);
        }
        done.extend(client.poll());
    }
    done.extend(client.collect(total - done.len(), Duration::from_secs(30)));
    assert_eq!(done.len(), total, "churn stranded a query");
    for q in &done {
        assert!(q.failure.is_none(), "{:?}", q.failure);
        assert_eq!(q.audit_clean, Some(true));
        assert_eq!(q.items.len(), 1);
    }
    let stats = cluster.shutdown(&mut client);
    assert!(stats.connects >= 2, "restart must reconnect links");
    assert!(stats.balances(0), "unbalanced: {stats:?}");
}

/// A *durable* peer models process death, not just an interface cut:
/// the kill wipes its in-memory catalog, and the restart replays the
/// WAL (prefix-consistent), re-announces the surviving bindings as
/// `rereg` frames through the normal transport accounting, and serves
/// queries audit-clean again.
#[test]
fn durable_peer_recovers_registrations_across_kill_restart() {
    let mut peers = world();
    // seller-0 journals its catalog — which holds its own base entry
    // plus knowledge of the meta-index, so a restarted seller has
    // somewhere to re-announce to.
    peers[SELLER_0]
        .catalog_mut()
        .register(CatalogEntry::index("meta", pdx_cds()));
    peers[SELLER_0].enable_durability(DurableCatalog::new(SharedDisk::new(MemDisk::new())));
    let (cluster, mut client) = TcpCluster::with_config(peers, churn_config());

    let plan = Plan::url("mqp://seller-0/");
    client.submit(0, &plan);
    let before = client.collect(1, Duration::from_secs(30));
    assert_eq!(before.len(), 1);
    assert!(before[0].failure.is_none(), "{:?}", before[0].failure);

    cluster.kill(SELLER_0);
    settle();
    cluster.restart(SELLER_0);
    settle(); // recovery replay + rereg frames to meta

    let qid = client.submit(0, &plan);
    let done = client.collect(1, Duration::from_secs(30));
    assert_eq!(done.len(), 1, "query stranded across durable restart");
    let q = &done[0];
    assert_eq!(q.qid, qid);
    assert!(q.failure.is_none(), "{:?}", q.failure);
    let titles: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
    assert_eq!(titles, ["A"], "recovered seller must serve its own data");
    assert_eq!(q.audit_clean, Some(true));
    let stats = cluster.shutdown(&mut client);
    // The rereg announcements are real frames through the normal
    // enqueue path, so the sender-side identity must still be exact.
    assert!(
        stats.balances(0),
        "unbalanced with rereg traffic: {stats:?}"
    );
}

/// With a finite reconnect budget, frames for a peer that never comes
/// back are shed as `dropped_disconnected` — and the query fails with
/// the protocol's own give-up reason instead of hanging forever.
#[test]
fn dead_link_sheds_frames_and_query_fails_cleanly() {
    let cfg = TcpConfig {
        retry: Some(RetryPolicy {
            timeout_us: 80_000,
            max_retries: 2,
        }),
        max_link_attempts: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        ..TcpConfig::default()
    };
    let (cluster, mut client) = TcpCluster::with_config(world(), cfg);
    cluster.kill(SELLER_0);
    settle();
    let qid = client.submit(0, &Plan::url("mqp://seller-0/"));
    let done = client.collect(1, Duration::from_secs(30));
    assert_eq!(done.len(), 1, "failed query must still report an outcome");
    let q = &done[0];
    assert_eq!(q.qid, qid);
    let failure = q.failure.as_deref().expect("query must fail: peer is gone");
    assert!(
        failure.contains("unresponsive"),
        "unexpected reason {failure:?}"
    );
    let stats = cluster.shutdown(&mut client);
    assert!(
        stats.dropped_disconnected >= 1,
        "dead link must shed its frames: {stats:?}"
    );
    assert!(stats.balances(0), "unbalanced: {stats:?}");
}
