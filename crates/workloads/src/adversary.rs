//! The adversarial registration-churn world (DESIGN.md §14, experiment
//! E16): the lazy scale federation of [`scale`](crate::scale) with an
//! attacker population layered on top.
//!
//! Three adversary classes, all seeded and deterministic:
//!
//! * **Hijackers** — register conflicting base bindings for cells real
//!   sellers serve, holding *wrong* data (marked with a `<poison/>`
//!   field so poisoned answers are mechanically countable).
//! * **Flappers** — hijackers that keep re-registering after being
//!   struck, probing the quarantine state machine's memory.
//! * **Honest mirrors** — the hard negative class: extra peers holding
//!   *exact copies* of a seller's data who register the same cell.
//!   Multi-origin and conflicting by the catalog's lights, but
//!   verifiably consistent — a defense that quarantines them is broken.
//!
//! Every contested cell keeps at least two honest claimants (its real
//! holders plus a mirror), so a verification round's majority can never
//! tie in the hijacker's favor.
//!
//! Node layout: `client`(0), `meta`(1), `city-<k>` index servers
//! (2..2+C, the defense verifiers), then the named attacker head
//! (`hijack-<cell>` / `mirror-<cell>`), then the scheme-named seller
//! tail — so ten-thousand-seller worlds stay O(touched peers).

use std::sync::Arc;

use mqp_algebra::plan::{Plan, UrnRef};
use mqp_catalog::{CatalogEntry, ServerId};
use mqp_namespace::{Cell, InterestArea, Namespace, Urn};
use mqp_net::{NodeId, Topology};
use mqp_peer::{Directory, Peer, SimHarness};
use mqp_xml::Element;

use crate::scale::{namespace, CATEGORIES};

/// Average sellers per city when [`AdversaryConfig::cities`] is auto.
const SELLERS_PER_CITY: usize = 16;

/// Every `FLAP_EVERY`-th hijacker keeps flapping after the second
/// strike.
const FLAP_EVERY: usize = 3;

/// Deliveries budget per schedule wave — far above what any built world
/// needs; the net quiesces long before.
const WAVE_BUDGET: usize = 50_000_000;

/// Adversary-world parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdversaryConfig {
    /// Number of honest seller (base) peers.
    pub sellers: usize,
    /// Number of cities / index servers; `0` = auto (`sellers / 16`).
    pub cities: usize,
    /// Seed for all role assignment and data derivation.
    pub seed: u64,
    /// Fraction of populated cells that get a hijacker (e.g. `0.05`).
    pub hijacker_fraction: f64,
    /// Arm the multi-origin binding defense at every index server.
    pub defense: bool,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            sellers: 1_000,
            cities: 0,
            seed: 0xD15EA5E,
            hijacker_fraction: 0.05,
            defense: true,
        }
    }
}

/// One cell the schedule drives registrations for.
#[derive(Debug, Clone)]
pub struct CellPlan {
    /// Cell index (`city * CATEGORIES.len() + category`).
    pub cell: usize,
    /// City index.
    pub city: usize,
    /// Category index.
    pub category: usize,
    /// Seller indices really holding this cell.
    pub holders: Vec<usize>,
    /// The hijacker's node, when this cell is contested.
    pub hijacker: Option<NodeId>,
    /// The honest mirror's node.
    pub mirror: NodeId,
}

/// Detection quality after the schedule ran (ground truth from seeded
/// roles, observed state from the index servers' trust books).
#[derive(Debug, Clone, Default)]
pub struct DetectionReport {
    /// Hijackers in the world (the positive class).
    pub hijackers: usize,
    /// Hijackers quarantined (true positives).
    pub detected: usize,
    /// Non-hijackers quarantined (false positives).
    pub false_positives: usize,
    /// Honest mirrors quarantined — must be zero for a sound defense.
    pub mirrors_quarantined: usize,
    /// `detected / quarantined` (1.0 when nothing is quarantined).
    pub precision: f64,
    /// `detected / hijackers` (1.0 when there are no hijackers).
    pub recall: f64,
    /// Mean µs from a hijacker's first observed registration to the
    /// strike that quarantined it (over detected hijackers).
    pub mean_time_to_quarantine_us: f64,
}

/// Poisoned-answer exposure: one discovery query per scheduled cell.
#[derive(Debug, Clone, Default)]
pub struct PoisonReport {
    /// Queries submitted (contested + hard-negative cells).
    pub queries: usize,
    /// Queries whose answer contained at least one poisoned item.
    pub poisoned: usize,
}

impl PoisonReport {
    /// Fraction of answers poisoned.
    pub fn rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.poisoned as f64 / self.queries as f64
        }
    }
}

/// The built world.
pub struct AdversaryWorld {
    /// The lazy harness.
    pub harness: SimHarness,
    /// Client node (0).
    pub client: NodeId,
    /// Meta-index node (1).
    pub meta: NodeId,
    /// City count.
    pub cities: usize,
    /// Honest seller count.
    pub sellers: usize,
    /// Cells with a hijacker.
    pub contested: Vec<CellPlan>,
    /// Hard-negative cells: mirrored, never hijacked.
    pub mirrored: Vec<CellPlan>,
    /// The shared namespace.
    pub namespace: Arc<Namespace>,
}

/// SplitMix64 (same construction as the scale world's).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(seed: u64, stream: u64, s: u64) -> u64 {
    splitmix64(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F) ^ splitmix64(s))
}

fn city_name(k: usize) -> String {
    format!("C{k}")
}

fn cell_area(city: usize, category: usize) -> InterestArea {
    InterestArea::of(Cell::parse([
        city_name(city).as_str(),
        CATEGORIES[category],
    ]))
}

/// One honest seller's single item.
fn honest_item(seed: u64, s: usize, category: &str) -> Element {
    let cents = 100 + mix(seed, 3, s as u64) % 19_900;
    Element::new("item")
        .child(Element::new("name").text(format!("lot-{s}")))
        .child(Element::new("seller").text(format!("seller-{s}")))
        .child(Element::new("category").text(category))
        .child(Element::new("price").text(format!("{}.{:02}", cents / 100, cents % 100)))
}

/// A hijacker's forged inventory for a cell: wrong items, wrong
/// cardinality (2–3 where honest holders keep one lot each), each
/// carrying the `<poison/>` marker ground truth counts.
fn poison_items(seed: u64, cell: usize, category: &str) -> Vec<Element> {
    let n = 2 + (mix(seed, 4, cell as u64) % 2) as usize;
    (0..n)
        .map(|i| {
            Element::new("item")
                .child(Element::new("name").text(format!("fake-{cell}-{i}")))
                .child(Element::new("category").text(category))
                .child(Element::new("poison").text("1"))
                .child(Element::new("price").text("0.01"))
        })
        .collect()
}

impl AdversaryWorld {
    /// The node hosting city `k`'s index server (a defense verifier).
    pub fn city_node(&self, k: usize) -> NodeId {
        2 + k
    }

    /// The discovery query for a scheduled cell.
    pub fn query(&self, plan: &CellPlan) -> Plan {
        Plan::Urn(UrnRef::new(Urn::area(cell_area(plan.city, plan.category))))
    }

    /// Drives the adversarial registration schedule to quiescence:
    ///
    /// 1. honest refresh — every holder and mirror of a scheduled cell
    ///    re-registers with its city index (seeding claimant sets);
    /// 2. hijack — each contested cell's hijacker registers its forged
    ///    binding (first verification round, first strike);
    /// 3. churn — every hijacker re-registers (second strike →
    ///    quarantine);
    /// 4. flap — every [`FLAP_EVERY`]-th hijacker keeps going.
    ///
    /// Each wave runs the network dry, so verification rounds complete
    /// before the next wave begins.
    pub fn run_schedule(&mut self) {
        let mut scheduled: Vec<CellPlan> = self.contested.clone();
        scheduled.extend(self.mirrored.iter().cloned());
        // Wave 1: honest claimants.
        for plan in &scheduled {
            let to = self.city_node(plan.city);
            let area = cell_area(plan.city, plan.category);
            for &s in &plan.holders {
                let from = self.seller_node(s);
                let entry = CatalogEntry::base(format!("seller-{s}"), area.clone());
                self.harness.send_registration(from, to, entry);
            }
            self.harness.send_registration(
                plan.mirror,
                to,
                CatalogEntry::base(format!("mirror-{}", plan.cell), area.clone()),
            );
        }
        self.harness.run(WAVE_BUDGET);
        // Waves 2 and 3: hijack, then churn.
        for _ in 0..2 {
            for plan in &self.contested {
                let Some(h) = plan.hijacker else { continue };
                let entry = CatalogEntry::base(
                    format!("hijack-{}", plan.cell),
                    cell_area(plan.city, plan.category),
                );
                self.harness
                    .send_registration(h, self.city_node(plan.city), entry);
            }
            self.harness.run(WAVE_BUDGET);
        }
        // Wave 4: flappers.
        for (i, plan) in self.contested.iter().enumerate() {
            if i % FLAP_EVERY != 0 {
                continue;
            }
            let Some(h) = plan.hijacker else { continue };
            let entry = CatalogEntry::base(
                format!("hijack-{}", plan.cell),
                cell_area(plan.city, plan.category),
            );
            self.harness
                .send_registration(h, self.city_node(plan.city), entry);
        }
        self.harness.run(WAVE_BUDGET);
    }

    /// The node hosting seller `s` (after the named attacker head).
    pub fn seller_node(&self, s: usize) -> NodeId {
        self.harness.len() - self.sellers + s
    }

    /// Scores detection against seeded ground truth by scanning every
    /// materialized index server's trust book.
    pub fn detection_report(&self) -> DetectionReport {
        let mut report = DetectionReport {
            hijackers: self.contested.len(),
            ..DetectionReport::default()
        };
        let hijacker_ids: Vec<ServerId> = self
            .contested
            .iter()
            .filter(|p| p.hijacker.is_some())
            .map(|p| ServerId::new(format!("hijack-{}", p.cell)))
            .collect();
        let mirror_ids: Vec<ServerId> = self
            .contested
            .iter()
            .chain(self.mirrored.iter())
            .map(|p| ServerId::new(format!("mirror-{}", p.cell)))
            .collect();
        // Only cities hosting scheduled cells ever materialize their
        // index server; the rest have nothing to report.
        let mut scheduled_cities: Vec<usize> = self
            .contested
            .iter()
            .chain(self.mirrored.iter())
            .map(|p| p.city)
            .collect();
        scheduled_cities.sort_unstable();
        scheduled_cities.dedup();
        let mut ttq_sum = 0.0;
        for k in scheduled_cities {
            let book = self.harness.peer(self.city_node(k)).catalog().trust();
            for q in book.quarantined() {
                if hijacker_ids.contains(&q) {
                    report.detected += 1;
                    if let Some(rec) = book.record(&q) {
                        ttq_sum += rec.last_strike_at.saturating_sub(rec.first_seen) as f64;
                    }
                } else {
                    report.false_positives += 1;
                    if mirror_ids.contains(&q) {
                        report.mirrors_quarantined += 1;
                    }
                }
            }
        }
        let quarantined = report.detected + report.false_positives;
        report.precision = if quarantined == 0 {
            1.0
        } else {
            report.detected as f64 / quarantined as f64
        };
        report.recall = if report.hijackers == 0 {
            1.0
        } else {
            report.detected as f64 / report.hijackers as f64
        };
        report.mean_time_to_quarantine_us = if report.detected == 0 {
            0.0
        } else {
            ttq_sum / report.detected as f64
        };
        report
    }

    /// Submits one discovery query per scheduled cell and counts
    /// poisoned answers.
    pub fn run_queries(&mut self) -> PoisonReport {
        let mut report = PoisonReport::default();
        let cells: Vec<Plan> = self
            .contested
            .iter()
            .chain(self.mirrored.iter())
            .map(|p| self.query(p))
            .collect();
        for plan in cells {
            self.harness.submit(self.client, plan);
            report.queries += 1;
        }
        self.harness.run(WAVE_BUDGET);
        for outcome in self.harness.take_completed() {
            let poisoned = outcome.items.iter().any(|i| i.field("poison").is_some());
            if poisoned {
                report.poisoned += 1;
            }
        }
        report
    }
}

/// Builds the world. One O(sellers) pass assigns roles and picks
/// contested/mirrored cells; every peer then waits for first touch.
pub fn build(config: AdversaryConfig) -> AdversaryWorld {
    let cities = if config.cities > 0 {
        config.cities
    } else {
        (config.sellers / SELLERS_PER_CITY).max(1)
    };
    let sellers = config.sellers;
    let seed = config.seed;
    let ncat = CATEGORIES.len();
    let ns = Arc::new(namespace(cities));

    let city_of = move |s: usize| (mix(seed, 1, s as u64) % cities as u64) as usize;
    let cat_of = move |s: usize| (mix(seed, 2, s as u64) % ncat as u64) as usize;

    // Ground truth: holders per cell, then the seeded contested /
    // hard-negative choice over populated cells.
    let mut holders: Vec<Vec<usize>> = vec![Vec::new(); cities * ncat];
    for s in 0..sellers {
        holders[city_of(s) * ncat + cat_of(s)].push(s);
    }
    let threshold = (config.hijacker_fraction * 1_000_000.0) as u64;
    let mut contested_cells = Vec::new();
    let mut mirrored_cells = Vec::new();
    for (cell, held) in holders.iter().enumerate() {
        if held.is_empty() {
            continue;
        }
        let roll = mix(seed, 5, cell as u64) % 1_000_000;
        if roll < threshold {
            contested_cells.push(cell);
        } else if roll < threshold.saturating_mul(2) {
            mirrored_cells.push(cell);
        }
    }

    // Directory: named head (client, meta, cities, attackers), seller
    // tail. Attacker node ids are fixed by push order.
    let mut named: Vec<ServerId> = vec!["client".into(), "meta".into()];
    for k in 0..cities {
        named.push(format!("city-{k}").into());
    }
    let mut contested = Vec::new();
    let mut mirrored = Vec::new();
    for &cell in &contested_cells {
        let hijack_node = named.len();
        named.push(format!("hijack-{cell}").into());
        let mirror_node = named.len();
        named.push(format!("mirror-{cell}").into());
        contested.push(CellPlan {
            cell,
            city: cell / ncat,
            category: cell % ncat,
            holders: holders[cell].clone(),
            hijacker: Some(hijack_node),
            mirror: mirror_node,
        });
    }
    for &cell in &mirrored_cells {
        let mirror_node = named.len();
        named.push(format!("mirror-{cell}").into());
        mirrored.push(CellPlan {
            cell,
            city: cell / ncat,
            category: cell % ncat,
            holders: holders[cell].clone(),
            hijacker: None,
            mirror: mirror_node,
        });
    }
    let head = named.len();
    let directory = Directory::with_generated_tail(named, "seller-", sellers);
    let n = directory.len();

    // Role lookup for the factory: node → (cell, is_hijacker).
    let mut attacker_role: Vec<(NodeId, usize, bool)> = Vec::new();
    for p in &contested {
        attacker_role.push((p.hijacker.unwrap(), p.cell, true));
        attacker_role.push((p.mirror, p.cell, false));
    }
    for p in &mirrored {
        attacker_role.push((p.mirror, p.cell, false));
    }
    attacker_role.sort_unstable();
    let defense = config.defense;

    let factory_ns = Arc::clone(&ns);
    let mut residents: Option<Vec<Vec<u32>>> = None;
    let factory = move |node: NodeId| -> Peer {
        let ns = Arc::clone(&factory_ns);
        match node {
            0 => Peer::new("client", ns).with_default_route("meta"),
            1 => {
                let mut p = Peer::new("meta", ns);
                for k in 0..cities {
                    p.catalog_mut().register(
                        CatalogEntry::index(
                            format!("city-{k}"),
                            InterestArea::of(Cell::parse([city_name(k).as_str(), "*"])),
                        )
                        .authoritative(),
                    );
                }
                p
            }
            _ if node < 2 + cities => {
                let k = node - 2;
                let map = residents.get_or_insert_with(|| {
                    let mut map = vec![Vec::new(); cities];
                    for s in 0..sellers {
                        map[city_of(s)].push(s as u32);
                    }
                    map
                });
                let mut p = Peer::new(format!("city-{k}"), ns);
                if defense {
                    p.enable_defense();
                }
                for &s in &map[k] {
                    let s = s as usize;
                    p.catalog_mut().register(CatalogEntry::base(
                        format!("seller-{s}"),
                        cell_area(k, cat_of(s)),
                    ));
                }
                p
            }
            _ if node < head => {
                let i = attacker_role
                    .binary_search_by_key(&node, |&(n, _, _)| n)
                    .expect("attacker node has a role");
                let (_, cell, is_hijacker) = attacker_role[i];
                let (city, cat) = (cell / ncat, cell % ncat);
                let area = cell_area(city, cat);
                if is_hijacker {
                    let mut p = Peer::new(format!("hijack-{cell}"), ns);
                    p.add_collection("loot", area, poison_items(seed, cell, CATEGORIES[cat]));
                    p
                } else {
                    // Exact copy of the cell's first holder: the honest
                    // mirror answers every probe like the original.
                    let mut p = Peer::new(format!("mirror-{cell}"), ns);
                    let s = *holders[cell].first().expect("mirrored cells are populated");
                    p.add_collection("copy", area, [honest_item(seed, s, CATEGORIES[cat])]);
                    p
                }
            }
            _ => {
                let s = node - head;
                let (k, c) = (city_of(s), cat_of(s));
                let mut p = Peer::new(format!("seller-{s}"), ns);
                p.add_collection(
                    "lot",
                    cell_area(k, c),
                    [honest_item(seed, s, CATEGORIES[c])],
                );
                p
            }
        }
    };

    let topology = Topology::clustered(n, cities.min(n), 1_000, 40_000).with_bandwidth(100.0);
    AdversaryWorld {
        harness: SimHarness::lazy(topology, directory, factory),
        client: 0,
        meta: 1,
        cities,
        sellers,
        contested,
        mirrored,
        namespace: ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqp_catalog::TrustLevel;

    fn small() -> AdversaryConfig {
        AdversaryConfig {
            sellers: 400,
            seed: 7,
            hijacker_fraction: 0.10,
            ..AdversaryConfig::default()
        }
    }

    #[test]
    fn world_is_deterministic_and_has_both_classes() {
        let a = build(small());
        let b = build(small());
        assert!(!a.contested.is_empty(), "need contested cells at 10%");
        assert!(!a.mirrored.is_empty(), "need hard negatives");
        assert_eq!(a.contested.len(), b.contested.len());
        assert_eq!(a.mirrored.len(), b.mirrored.len());
        assert_eq!(a.harness.len(), b.harness.len());
        // Ground truth needs no peers.
        assert_eq!(a.harness.materialized(), 0);
    }

    #[test]
    fn defense_quarantines_hijackers_but_never_mirrors() {
        let mut w = build(small());
        w.run_schedule();
        let report = w.detection_report();
        assert!(report.hijackers > 0);
        assert_eq!(
            report.mirrors_quarantined, 0,
            "honest mirrors must never be quarantined"
        );
        assert!(
            report.recall >= 0.9,
            "recall {} too low ({}/{})",
            report.recall,
            report.detected,
            report.hijackers
        );
        assert!(
            report.precision >= 0.95,
            "precision {} too low",
            report.precision
        );
        assert!(report.mean_time_to_quarantine_us > 0.0);
        // Honest holders stay trusted everywhere.
        for plan in &w.contested {
            let book = w.harness.peer(w.city_node(plan.city)).catalog().trust();
            for &s in &plan.holders {
                assert_eq!(
                    book.level_of(&ServerId::new(format!("seller-{s}"))),
                    TrustLevel::Trusted
                );
            }
        }
    }

    #[test]
    fn defense_off_poisons_answers_and_defense_on_stops_them() {
        let mut off = build(AdversaryConfig {
            defense: false,
            ..small()
        });
        off.run_schedule();
        assert_eq!(
            off.detection_report().detected,
            0,
            "no defense, no detections"
        );
        let poisoned_off = off.run_queries();
        assert!(
            poisoned_off.poisoned > 0,
            "undefended contested cells must surface poison"
        );

        let mut on = build(small());
        on.run_schedule();
        let poisoned_on = on.run_queries();
        assert!(
            poisoned_on.rate() < poisoned_off.rate(),
            "defense must reduce poisoning ({} !< {})",
            poisoned_on.rate(),
            poisoned_off.rate()
        );
    }

    #[test]
    fn verification_costs_traffic_only_when_armed() {
        let mut on = build(small());
        on.run_schedule();
        let on_stats = on.harness.net.stats().clone();
        let mut off = build(AdversaryConfig {
            defense: false,
            ..small()
        });
        off.run_schedule();
        let off_stats = off.harness.net.stats().clone();
        assert!(on_stats.messages_sent > off_stats.messages_sent);
        assert!(on_stats.bytes_sent > off_stats.bytes_sent);
    }
}
