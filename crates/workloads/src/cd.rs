//! The CD search of Figures 3–4: favourite songs ⋈ track listings ⋈
//! Portland for-sale lists, `price < $10`.
//!
//! The paper uses CDDB/FreeDB as the track-listing service; our
//! substitute is a synthetic track-listing collection served by a
//! dedicated peer (`trackdb`), which exercises the same plan shape and
//! routing behaviour.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mqp_algebra::plan::{JoinCond, Plan};
use mqp_namespace::{Cell, Hierarchy, InterestArea, Namespace};
use mqp_net::Topology;
use mqp_peer::{Peer, SimHarness};
use mqp_xml::Element;

/// World parameters.
#[derive(Debug, Clone, Copy)]
pub struct CdConfig {
    /// Number of albums in the track-listing service.
    pub albums: usize,
    /// Tracks per album.
    pub tracks_per_album: usize,
    /// Number of favourite songs on the client.
    pub favorites: usize,
    /// Number of Portland CD sellers.
    pub sellers: usize,
    /// Fraction of albums each seller stocks (0..=1).
    pub stock_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CdConfig {
    fn default() -> Self {
        CdConfig {
            albums: 40,
            tracks_per_album: 8,
            favorites: 5,
            sellers: 2,
            stock_fraction: 0.5,
            seed: 7,
        }
    }
}

/// Minimal namespace for the scenario.
pub fn namespace() -> Namespace {
    Namespace::new([
        Hierarchy::new("Location").with(["USA/OR/Portland"]),
        Hierarchy::new("Merchandise").with(["Music/CDs"]),
    ])
}

fn pdx_cds() -> InterestArea {
    InterestArea::of(Cell::parse(["USA/OR/Portland", "Music/CDs"]))
}

/// A generated CD world.
pub struct CdWorld {
    /// node 0 = client, 1 = meta, 2 = trackdb, 3.. = sellers.
    pub harness: SimHarness,
    /// The client node.
    pub client: usize,
    /// The Figure-3 query plan (favourites inlined as verbatim data).
    pub plan: Plan,
    /// Album titles the client's favourite songs appear on (ground
    /// truth for the join).
    pub favorite_albums: Vec<String>,
}

/// Builds the world and the Figure-3 plan.
pub fn build(config: CdConfig) -> CdWorld {
    let ns = namespace();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Track listings.
    let mut tracks: Vec<Element> = Vec::new();
    let mut all_songs: Vec<(String, String)> = Vec::new(); // (song, album)
    for a in 0..config.albums {
        let album = format!("Album-{a:03}");
        for t in 0..config.tracks_per_album {
            let song = format!("Song-{a:03}-{t}");
            tracks.push(
                Element::new("track")
                    .child(Element::new("title").text(&song))
                    .child(Element::new("album").text(&album)),
            );
            all_songs.push((song, album.clone()));
        }
    }

    // Favourites: a random sample of known songs.
    let mut favorite_albums = Vec::new();
    let mut favorites = Vec::new();
    for _ in 0..config.favorites {
        let (song, album) = all_songs[rng.gen_range(0..all_songs.len())].clone();
        if !favorite_albums.contains(&album) {
            favorite_albums.push(album.clone());
        }
        favorites.push(Element::new("song").child(Element::new("title").text(song)));
    }

    // Peers.
    let mut peers = Vec::new();
    peers.push(Peer::new("client", ns.clone()).with_default_route("meta"));
    let mut meta = Peer::new("meta", ns.clone());
    meta.catalog_mut()
        .map_urn("urn:CD:TrackListings", "trackdb", None);
    peers.push(meta);
    let mut trackdb = Peer::new("trackdb", ns.clone());
    trackdb.add_collection("tracks", pdx_cds(), tracks);
    peers.push(trackdb);
    for s in 0..config.sellers {
        let id = format!("cd-seller-{s}");
        let mut seller = Peer::new(id.clone(), ns.clone());
        let mut stock: Vec<Element> = Vec::new();
        for a in 0..config.albums {
            if !rng.gen_bool(config.stock_fraction) {
                continue;
            }
            let price = (rng.gen_range(300..2500) as f64) / 100.0;
            stock.push(
                Element::new("item")
                    .child(Element::new("title").text(format!("Album-{a:03}")))
                    .child(Element::new("price").text(format!("{price:.2}")))
                    .child(Element::new("location").text("USA/OR/Portland")),
            );
        }
        seller.add_collection("cds", pdx_cds(), stock);
        // The meta server maps the ForSale URN to every seller (§3.4's
        // "union of two seller URLs").
        peers[1].catalog_mut().map_urn(
            "urn:ForSale:Portland-CDs",
            id.clone(),
            Some("/data[@id='cds']".to_owned()),
        );
        peers.push(seller);
    }

    // The Figure-3 plan.
    let plan = figure3_plan(favorites);

    let n = peers.len();
    CdWorld {
        harness: SimHarness::new(
            Topology::clustered(n, 2, 1_500, 45_000).with_bandwidth(100.0),
            peers,
        ),
        client: 0,
        plan,
        favorite_albums,
    }
}

/// The exact plan of Figure 3 over the given favourite-song items.
pub fn figure3_plan(favorites: Vec<Element>) -> Plan {
    let inner = Plan::join(
        JoinCond::on("title", "title"),
        Plan::data(favorites),
        Plan::urn("urn:CD:TrackListings"),
    );
    Plan::join(
        JoinCond::on("track/album", "title"),
        inner,
        Plan::select("price < 10", Plan::urn("urn:ForSale:Portland-CDs")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_end_to_end() {
        let mut w = build(CdConfig::default());
        let qid = w.harness.submit(w.client, w.plan.clone());
        w.harness.run(100_000);
        let done = w.harness.take_completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert_eq!(q.qid, qid);
        assert!(q.failure.is_none(), "{:?}", q.failure);
        // Every result joins a favourite album with a sub-$10 listing.
        for t in &q.items {
            assert_eq!(t.name(), "tuple");
            let price: f64 = mqp_xml::xpath::values(t, "item/price")[0].parse().unwrap();
            assert!(price < 10.0);
            let album = mqp_xml::xpath::values(t, "item/title")[0].clone();
            assert!(w.favorite_albums.contains(&album), "{album}");
        }
        // The MQP visited: client → meta → trackdb → sellers (≥4 hops +
        // result).
        assert!(q.hops >= 4, "hops = {}", q.hops);
    }

    #[test]
    fn results_monotone_in_price_cut() {
        // Raising the price cut can only add results.
        let run = |cut: f64| {
            let mut w = build(CdConfig::default());
            let plan = match w.plan.clone() {
                Plan::Join { on, left, right } => {
                    let relaxed = match *right {
                        Plan::Select { input, .. } => {
                            Plan::select(&format!("price < {cut}"), *input)
                        }
                        other => other,
                    };
                    Plan::Join {
                        on,
                        left,
                        right: Box::new(relaxed),
                    }
                }
                other => other,
            };
            w.harness.submit(w.client, plan);
            w.harness.run(100_000);
            w.harness.take_completed().pop().unwrap().items.len()
        };
        let cheap = run(5.0);
        let mid = run(10.0);
        let all = run(100.0);
        assert!(cheap <= mid && mid <= all, "{cheap} {mid} {all}");
        assert!(all >= 1);
    }

    #[test]
    fn deterministic_world() {
        let w1 = build(CdConfig::default());
        let w2 = build(CdConfig::default());
        assert_eq!(w1.plan, w2.plan);
        assert_eq!(w1.favorite_albums, w2.favorite_albums);
    }
}
