//! The P2P garage sale (paper §2): sellers, consignment shops, index
//! and meta-index servers over a Location × Merchandise namespace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mqp_algebra::plan::{Plan, UrnRef};
use mqp_catalog::CatalogEntry;
use mqp_namespace::{Cell, Hierarchy, InterestArea, Namespace, Urn};
use mqp_net::Topology;
use mqp_peer::{Peer, SimHarness};
use mqp_xml::Element;

/// City coordinates in the location hierarchy (Figure 5's world plus a
/// little more of it).
pub const CITIES: [&str; 8] = [
    "USA/OR/Portland",
    "USA/OR/Eugene",
    "USA/WA/Seattle",
    "USA/WA/Vancouver",
    "USA/CA/SanFrancisco",
    "USA/CA/LosAngeles",
    "France/IDF/Paris",
    "France/PACA/Marseille",
];

/// Leaf merchandise categories (eBay-style, §3.1).
pub const CATEGORIES: [&str; 8] = [
    "Furniture/Chairs",
    "Furniture/Tables",
    "Electronics/TV",
    "Electronics/VCR",
    "Music/CDs",
    "Music/Vinyl",
    "SportingGoods/GolfClubs",
    "Books/Paperbacks",
];

/// The garage-sale namespace: Location (country/state/city) ×
/// Merchandise (department/category).
pub fn namespace() -> Namespace {
    Namespace::new([
        Hierarchy::new("Location").with(CITIES),
        Hierarchy::new("Merchandise").with(CATEGORIES),
    ])
}

/// World-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GarageConfig {
    /// Number of seller (base) peers.
    pub sellers: usize,
    /// Items per seller.
    pub items_per_seller: usize,
    /// Number of city-level index servers (authoritative for
    /// `[city, *]`).
    pub index_servers: usize,
    /// Number of top-level meta-index servers (cover `[country, *]`).
    pub meta_servers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GarageConfig {
    fn default() -> Self {
        GarageConfig {
            sellers: 20,
            items_per_seller: 10,
            index_servers: 4,
            meta_servers: 2,
            seed: 42,
        }
    }
}

/// A generated world plus the metadata experiments need.
pub struct GarageWorld {
    /// The harness: node 0 is the client, then meta servers, then index
    /// servers, then sellers.
    pub harness: SimHarness,
    /// Node id of the client peer.
    pub client: usize,
    /// Seller areas by node id (ground truth for recall).
    pub seller_areas: Vec<(usize, InterestArea)>,
    /// The namespace.
    pub namespace: Namespace,
}

/// Builds a garage-sale world. Sellers specialize: each picks a home
/// city and one or two merchandise categories ("data are stored, grouped,
/// replicated and queried according to … categorization hierarchies that
/// are natural for the application", §3.1). City-level index servers are
/// authoritative for `[city, *]`; meta-index servers cover `[country,*]`
/// and know every index server; the client knows one meta server.
pub fn build(config: GarageConfig) -> GarageWorld {
    let ns = namespace();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_peers = 1 + config.meta_servers + config.index_servers + config.sellers;
    let mut peers: Vec<Peer> = Vec::with_capacity(n_peers);

    // Client.
    peers.push(Peer::new("client", ns.clone()).with_default_route("meta-0"));

    // Meta-index servers: country-level coverage, authoritative.
    for m in 0..config.meta_servers {
        let country = if m % 2 == 0 { "USA" } else { "France" };
        let mut p = Peer::new(format!("meta-{m}"), ns.clone());
        // Meta servers know each other so cross-country queries route.
        for other in 0..config.meta_servers {
            if other != m {
                let oc = if other % 2 == 0 { "USA" } else { "France" };
                p.catalog_mut().register(
                    CatalogEntry::meta_index(
                        format!("meta-{other}"),
                        InterestArea::parse(&[&[oc, "*"]]),
                    )
                    .authoritative(),
                );
            }
        }
        let _ = country;
        peers.push(p);
    }

    // Index servers: authoritative for one city each (round-robin).
    for i in 0..config.index_servers {
        let city = CITIES[i % CITIES.len()];
        let p = Peer::new(format!("index-{i}"), ns.clone());
        peers.push(p);
        // Every meta server covering the city's country learns about
        // this index server.
        let country = city.split('/').next().unwrap();
        for m in 0..config.meta_servers {
            let mc = if m % 2 == 0 { "USA" } else { "France" };
            if mc == country {
                peers[1 + m].catalog_mut().register(
                    CatalogEntry::index(format!("index-{i}"), InterestArea::parse(&[&[city, "*"]]))
                        .authoritative(),
                );
            }
        }
    }

    // Sellers.
    let mut seller_areas = Vec::new();
    for s in 0..config.sellers {
        let city = CITIES[rng.gen_range(0..CITIES.len())];
        let n_cats = 1 + rng.gen_range(0..2usize);
        let id = format!("seller-{s}");
        let mut p = Peer::new(id.clone(), ns.clone());
        let mut area = InterestArea::empty();
        for c in 0..n_cats {
            let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
            let cell_area = InterestArea::of(Cell::parse([city, cat]));
            let items: Vec<Element> = (0..config.items_per_seller)
                .map(|i| item(&mut rng, &id, city, cat, i))
                .collect();
            p.add_collection(&format!("c{c}"), cell_area.clone(), items);
            area = area.union(&cell_area);
        }
        let node = peers.len();
        peers.push(p);
        seller_areas.push((node, area.clone()));
        // Register with the city's index server if one exists, else
        // directly with a covering meta server (§3.3 registration).
        let mut registered = false;
        for i in 0..config.index_servers {
            if CITIES[i % CITIES.len()] == city {
                peers[1 + config.meta_servers + i]
                    .catalog_mut()
                    .register(CatalogEntry::base(format!("seller-{s}"), area.clone()));
                registered = true;
                break;
            }
        }
        if !registered {
            let country = city.split('/').next().unwrap();
            for m in 0..config.meta_servers {
                let mc = if m % 2 == 0 { "USA" } else { "France" };
                if mc == country {
                    peers[1 + m]
                        .catalog_mut()
                        .register(CatalogEntry::base(format!("seller-{s}"), area.clone()));
                }
            }
        }
    }

    // Wide-area topology: one LAN cluster per city-ish region.
    let topology = Topology::clustered(n_peers, CITIES.len().min(n_peers), 1_000, 40_000)
        .with_bandwidth(100.0);
    GarageWorld {
        harness: SimHarness::new(topology, peers),
        client: 0,
        seller_areas,
        namespace: ns,
    }
}

fn item(rng: &mut StdRng, seller: &str, city: &str, category: &str, i: usize) -> Element {
    let price = (rng.gen_range(100..20_000) as f64) / 100.0;
    let condition = ["mint", "good", "fair", "poor"][rng.gen_range(0..4usize)];
    Element::new("item")
        .child(Element::new("name").text(format!(
            "{} #{i}",
            category.rsplit('/').next().unwrap_or(category)
        )))
        .child(Element::new("seller").text(seller))
        .child(Element::new("location").text(city))
        .child(Element::new("category").text(category))
        .child(Element::new("price").text(format!("{price:.2}")))
        .child(Element::new("condition").text(condition))
        .child(Element::new("quantity").text("1"))
}

/// A random discovery query: an interest-area URN for one (city ×
/// category) cell, optionally filtered on price.
pub fn random_query(rng: &mut StdRng, max_price: Option<f64>) -> Plan {
    let city = CITIES[rng.gen_range(0..CITIES.len())];
    let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
    query_for(city, cat, max_price)
}

/// The discovery query for a specific cell.
pub fn query_for(city: &str, category: &str, max_price: Option<f64>) -> Plan {
    let area = InterestArea::of(Cell::parse([city, category]));
    let urn = Plan::Urn(UrnRef::new(Urn::area(area)));
    match max_price {
        Some(p) => Plan::select(&format!("price < {p}"), urn),
        None => urn,
    }
}

/// Ground truth: seller nodes whose area overlaps the query area.
pub fn true_holders(world: &GarageWorld, area: &InterestArea) -> Vec<usize> {
    world
        .seller_areas
        .iter()
        .filter(|(_, a)| a.overlaps(area))
        .map(|(n, _)| *n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_deterministically() {
        let w1 = build(GarageConfig::default());
        let w2 = build(GarageConfig::default());
        assert_eq!(w1.seller_areas.len(), w2.seller_areas.len());
        for ((n1, a1), (n2, a2)) in w1.seller_areas.iter().zip(&w2.seller_areas) {
            assert_eq!(n1, n2);
            assert_eq!(a1, a2);
        }
        assert_eq!(w1.harness.len(), 1 + 2 + 4 + 20);
    }

    #[test]
    fn sellers_hold_items_in_their_area() {
        let w = build(GarageConfig::default());
        for (node, area) in &w.seller_areas {
            let peer = w.harness.peer(*node);
            assert!(!peer.store().is_empty());
            assert!(peer.store().area().overlaps(area));
        }
    }

    #[test]
    fn end_to_end_garage_query() {
        let mut w = build(GarageConfig {
            sellers: 12,
            ..GarageConfig::default()
        });
        // Query a cell some seller actually serves (pick from ground
        // truth to avoid a vacuous test).
        let (_, area) = w.seller_areas[0].clone();
        let cell = area.cells()[0].clone();
        let city = cell.coords()[0].to_string();
        let cat = cell.coords()[1].to_string();
        let qid = w.harness.submit(w.client, query_for(&city, &cat, None));
        w.harness.run(100_000);
        let done = w.harness.take_completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert_eq!(q.qid, qid);
        assert!(q.failure.is_none(), "{:?}", q.failure);
        assert!(!q.items.is_empty());
        // All result items belong to the queried category.
        for item in &q.items {
            assert_eq!(item.field("category").as_deref(), Some(cat.as_str()));
            assert_eq!(item.field("location").as_deref(), Some(city.as_str()));
        }
    }

    #[test]
    fn random_queries_are_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(
                random_query(&mut r1, Some(50.0)),
                random_query(&mut r2, Some(50.0))
            );
        }
    }

    #[test]
    fn true_holders_match_overlap() {
        let w = build(GarageConfig::default());
        let (node, area) = &w.seller_areas[3];
        let holders = true_holders(&w, area);
        assert!(holders.contains(node));
    }
}
