//! "Of Mice and Men" (paper Figure 1): gene-expression repositories
//! described by Organism × CellType interest areas.

use mqp_algebra::plan::{Plan, UrnRef};
use mqp_catalog::CatalogEntry;
use mqp_namespace::{Cell, Hierarchy, InterestArea, Namespace, Urn};
use mqp_net::Topology;
use mqp_peer::{Peer, SimHarness};
use mqp_xml::Element;

/// The organism hierarchy of Figure 1 (Coelomata down to species).
pub fn organism_hierarchy() -> Hierarchy {
    Hierarchy::new("Organism").with([
        "Coelomata/Protostomia/DrosophilaMelanogaster",
        "Coelomata/Deuterostomia/Mammalia/Eutheria/Primates/HomoSapiens",
        "Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia/Murinae/MusMusculus",
        "Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia/Murinae/RattusNorvegicus",
    ])
}

/// The cell-type hierarchy of Figure 1.
pub fn cell_type_hierarchy() -> Hierarchy {
    Hierarchy::new("CellType").with([
        "Neural/Neurons/Association",
        "Neural/Neurons/Sensory",
        "Neural/Neurons/Motor",
        "Neural/Glial",
        "Connective/Bone/Osteoblasts",
        "Connective/Bone/Osteoclasts",
        "Connective/Adipose",
        "Muscle/Cardiac/Autorhythmic",
        "Muscle/Cardiac/Contractile",
        "Muscle/Smooth",
        "Muscle/Skeletal",
        "Epithelial/Cilliated",
        "Epithelial/Secretory",
    ])
}

/// The full namespace.
pub fn namespace() -> Namespace {
    Namespace::new([organism_hierarchy(), cell_type_hierarchy()])
}

/// The three research groups of Figure 1, with their interest areas.
pub fn group_areas() -> Vec<(&'static str, InterestArea)> {
    vec![
        // "one for neural cells in fruit flies"
        (
            "fly-lab",
            InterestArea::of(Cell::parse([
                "Coelomata/Protostomia/DrosophilaMelanogaster",
                "Neural",
            ])),
        ),
        // "a second for connective and muscle cell in rodents"
        (
            "rodent-lab",
            InterestArea::new([
                Cell::parse([
                    "Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia",
                    "Connective",
                ]),
                Cell::parse([
                    "Coelomata/Deuterostomia/Mammalia/Eutheria/Rodentia",
                    "Muscle",
                ]),
            ]),
        ),
        // "a third with all cell types for humans"
        (
            "human-lab",
            InterestArea::of(Cell::parse([
                "Coelomata/Deuterostomia/Mammalia/Eutheria/Primates/HomoSapiens",
                "*",
            ])),
        ),
    ]
}

/// The figure's query: "a query related to cardiac muscle cells in
/// mammals".
pub fn cardiac_mammal_area() -> InterestArea {
    InterestArea::of(Cell::parse([
        "Coelomata/Deuterostomia/Mammalia",
        "Muscle/Cardiac",
    ]))
}

/// A MIAME-flavoured expression record (the paper cites MIAME
/// [BHQ+01]; we keep the two categorization attributes plus a few
/// measurement fields).
pub fn expression_record(group: &str, organism: &str, cell_type: &str, i: usize) -> Element {
    Element::new("experiment")
        .child(Element::new("lab").text(group))
        .child(Element::new("organism").text(organism))
        .child(Element::new("cellType").text(cell_type))
        .child(Element::new("gene").text(format!("G{:04}", i * 37 % 9973)))
        .child(Element::new("expression").text(format!("{:.3}", (i as f64 * 0.7).sin().abs())))
}

/// Builds the Figure-1 world: a client, an NIH-style meta-index server
/// covering everything (§6: "Government agencies, such as the NIH,
/// would provide meta-index services"), and the three labs as base
/// servers hosting `records_per_group` records spread over their
/// areas' leaf cells.
pub fn build(records_per_group: usize) -> (SimHarness, usize) {
    let ns = namespace();
    let mut peers = Vec::new();
    peers.push(Peer::new("client", ns.clone()).with_default_route("nih-meta"));
    let mut meta = Peer::new("nih-meta", ns.clone());
    for (name, area) in group_areas() {
        meta.catalog_mut().register(CatalogEntry::base(name, area));
    }
    peers.push(meta);
    for (name, area) in group_areas() {
        let mut lab = Peer::new(name, ns.clone());
        // Spread records over the area's cells, at their most specific
        // known coordinates.
        for (ci, cell) in area.cells().iter().enumerate() {
            let organism = cell.coords()[0].to_string();
            let cell_type = if cell.coords()[1].is_top() {
                "Muscle/Cardiac".to_owned() // humans: include cardiac data
            } else {
                cell.coords()[1].to_string()
            };
            let items: Vec<Element> = (0..records_per_group)
                .map(|i| expression_record(name, &organism, &cell_type, i * (ci + 1)))
                .collect();
            lab.add_collection(&format!("expr-{ci}"), InterestArea::of(cell.clone()), items);
        }
        peers.push(lab);
    }
    let n = peers.len();
    (
        SimHarness::new(
            Topology::clustered(n, 3, 2_000, 60_000).with_bandwidth(50.0),
            peers,
        ),
        0,
    )
}

/// The cardiac-mammal discovery plan.
pub fn cardiac_query() -> Plan {
    Plan::Urn(UrnRef::new(Urn::area(cardiac_mammal_area())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_cover_relationships() {
        let q = cardiac_mammal_area();
        let groups = group_areas();
        let fly = &groups[0].1;
        let rodent = &groups[1].1;
        let human = &groups[2].1;
        // "route the query to the second or third site … but can ignore
        // the first site".
        assert!(!fly.overlaps(&q));
        assert!(rodent.overlaps(&q));
        assert!(human.overlaps(&q));
        // Neither lab *covers* the mammal-wide query on its own.
        assert!(!rodent.covers(&q));
        assert!(!human.covers(&q));
    }

    #[test]
    fn namespace_contains_figure_nodes() {
        let ns = namespace();
        let org = ns.dimension("Organism").unwrap();
        assert!(org.contains(&"Coelomata/Deuterostomia/Mammalia".into()));
        let ct = ns.dimension("CellType").unwrap();
        assert!(ct.contains(&"Muscle/Cardiac/Autorhythmic".into()));
        assert_eq!(org.max_depth(), 7);
    }

    #[test]
    fn cardiac_query_reaches_both_relevant_labs() {
        let (mut h, client) = build(5);
        let qid = h.submit(client, cardiac_query());
        h.run(100_000);
        let done = h.take_completed();
        assert_eq!(done.len(), 1);
        let q = &done[0];
        assert_eq!(q.qid, qid);
        assert!(q.failure.is_none(), "{:?}", q.failure);
        // Records from rodent-lab and human-lab; none from fly-lab.
        let labs: std::collections::BTreeSet<String> =
            q.items.iter().filter_map(|i| i.field("lab")).collect();
        assert!(labs.contains("rodent-lab"), "{labs:?}");
        assert!(labs.contains("human-lab"), "{labs:?}");
        assert!(!labs.contains("fly-lab"), "{labs:?}");
    }

    #[test]
    fn records_are_deterministic() {
        assert_eq!(
            expression_record("x", "o", "c", 3),
            expression_record("x", "o", "c", 3)
        );
    }
}
