//! # mqp-workloads — the paper's scenarios as deterministic generators
//!
//! Three workloads, matching the paper's running examples:
//!
//! * [`garage`] — the P2P garage sale (§2): a Location × Merchandise
//!   namespace, consignment-shop sellers with locality, index and
//!   meta-index peers, and interest-area queries. The workhorse for the
//!   routing and scaling experiments.
//! * [`gene`] — "Of Mice and Men" (Figure 1): gene-expression
//!   repositories over Organism × CellType hierarchies; three research
//!   groups with the paper's exact interest areas, and the mammalian
//!   cardiac-cell query the figure routes.
//! * [`cd`] — the CD search of Figures 3–4: favourite songs ⋈ a
//!   track-listing service ⋈ Portland for-sale lists with
//!   `price < $10`, including the CDDB/FreeDB substitute (a synthetic
//!   track-listing collection served by a peer).
//!
//! All generators are seeded and deterministic: the same config yields
//! byte-identical worlds, so experiments are reproducible.
//!
//! A fourth generator, [`adversary`], layers seeded attacker
//! populations (binding hijackers, registration flappers, honest
//! mirrors) over the [`scale`] federation to exercise the multi-origin
//! binding defense (DESIGN.md §14, experiment E16).

pub mod adversary;
pub mod cd;
pub mod garage;
pub mod gene;
pub mod scale;
