//! The six-digit scale world: a synthetic garage-sale federation sized
//! for 100k–1M peers in one process.
//!
//! [`garage`](crate::garage) builds every peer eagerly, which is fine at
//! tens of peers and hopeless at a million. This module builds the same
//! *shape* of world — client → meta-index → city index servers → sellers
//! — lazily: the [`SimHarness::lazy`] factory constructs a peer the
//! first time a message or timer touches it, so world setup is O(active
//! peers) no matter how many sellers the directory names.
//!
//! Determinism without materialization: each seller's city, category,
//! and item are pure functions of `(seed, seller_index)`, so ground
//! truth (who holds what) is computable by hashing, never by building
//! peers. Two worlds with the same config agree on everything.
//!
//! Node layout (fixed):
//!
//! | node | id | role |
//! |---|---|---|
//! | 0 | `client` | submits queries; default route → `meta` |
//! | 1 | `meta` | meta-index: authoritative `[city, *]` entry per city |
//! | 2..2+cities | `city-<k>` | index server for city `k` |
//! | 2+cities.. | `seller-<s>` | base peer, one collection, one item |
//!
//! Seller names are scheme-generated ([`Directory::with_generated_tail`])
//! so the directory costs O(named heads), not O(sellers).

use std::sync::Arc;

use mqp_algebra::plan::{Plan, UrnRef};
use mqp_catalog::CatalogEntry;
use mqp_namespace::{Cell, Hierarchy, InterestArea, Namespace, Urn};
use mqp_net::{NodeId, Topology};
use mqp_peer::{Directory, Peer, SimHarness};
use mqp_xml::Element;

/// Leaf merchandise categories (same taxonomy as the garage world).
pub const CATEGORIES: [&str; 8] = [
    "Furniture/Chairs",
    "Furniture/Tables",
    "Electronics/TV",
    "Electronics/VCR",
    "Music/CDs",
    "Music/Vinyl",
    "SportingGoods/GolfClubs",
    "Books/Paperbacks",
];

/// Average sellers per city when [`ScaleConfig::cities`] is auto.
const SELLERS_PER_CITY: usize = 16;

/// Scale-world parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Number of seller (base) peers.
    pub sellers: usize,
    /// Number of cities / index servers; `0` = auto
    /// (`sellers / 16`, at least one).
    pub cities: usize,
    /// Seed for the hash assigning sellers to cities and categories.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            sellers: 1_000,
            cities: 0,
            seed: 42,
        }
    }
}

/// A lazily materialized scale world.
pub struct ScaleWorld {
    /// The harness (lazy: only touched nodes exist).
    pub harness: SimHarness,
    /// Node id of the client peer (0).
    pub client: NodeId,
    /// Node id of the meta-index server (1).
    pub meta: NodeId,
    /// Number of cities (= index servers).
    pub cities: usize,
    /// Number of sellers.
    pub sellers: usize,
    /// The shared namespace.
    pub namespace: Arc<Namespace>,
    seed: u64,
}

/// SplitMix64: the world's only source of randomness. A pure function
/// of its input, so ground truth never needs an RNG state.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(seed: u64, stream: u64, s: u64) -> u64 {
    splitmix64(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F) ^ splitmix64(s))
}

fn city_name(k: usize) -> String {
    format!("C{k}")
}

/// The scale namespace: a flat synthetic city list × the garage
/// merchandise taxonomy.
pub fn namespace(cities: usize) -> Namespace {
    let mut location = Hierarchy::new("Location");
    for k in 0..cities {
        location.add(city_name(k).as_str());
    }
    Namespace::new([location, Hierarchy::new("Merchandise").with(CATEGORIES)])
}

impl ScaleWorld {
    /// Resolved city count for a config.
    fn resolve_cities(config: &ScaleConfig) -> usize {
        if config.cities > 0 {
            config.cities
        } else {
            (config.sellers / SELLERS_PER_CITY).max(1)
        }
    }

    /// The node hosting seller `s`.
    pub fn seller_node(&self, s: usize) -> NodeId {
        2 + self.cities + s
    }

    /// The node hosting city `k`'s index server.
    pub fn city_node(&self, k: usize) -> NodeId {
        2 + k
    }

    /// The city seller `s` lives in (hash-assigned).
    pub fn seller_city(&self, s: usize) -> usize {
        (mix(self.seed, 1, s as u64) % self.cities as u64) as usize
    }

    /// The category seller `s` sells (hash-assigned).
    pub fn seller_category(&self, s: usize) -> usize {
        (mix(self.seed, 2, s as u64) % CATEGORIES.len() as u64) as usize
    }

    /// The interest area for one (city × category) cell.
    pub fn area(&self, city: usize, category: usize) -> InterestArea {
        InterestArea::of(Cell::parse([
            city_name(city).as_str(),
            CATEGORIES[category],
        ]))
    }

    /// The discovery query for one (city × category) cell.
    pub fn query(&self, city: usize, category: usize) -> Plan {
        Plan::Urn(UrnRef::new(Urn::area(self.area(city, category))))
    }

    /// Ground truth from hashes alone: seller nodes in `city` selling
    /// `category`. O(sellers) scan, zero peers materialized.
    pub fn true_holders(&self, city: usize, category: usize) -> Vec<NodeId> {
        (0..self.sellers)
            .filter(|&s| self.seller_city(s) == city && self.seller_category(s) == category)
            .map(|s| self.seller_node(s))
            .collect()
    }
}

/// One seller's single item, derived from the hash stream.
fn item(seed: u64, s: usize, category: &str) -> Element {
    let cents = 100 + mix(seed, 3, s as u64) % 19_900;
    Element::new("item")
        .child(Element::new("name").text(format!("lot-{s}")))
        .child(Element::new("seller").text(format!("seller-{s}")))
        .child(Element::new("category").text(category))
        .child(Element::new("price").text(format!("{}.{:02}", cents / 100, cents % 100)))
}

/// Builds the world. O(cities) work up front (directory heads +
/// namespace); every peer waits for first touch. The factory's only
/// super-linear cost is the index server's O(sellers) membership scan,
/// paid once per *materialized* city.
pub fn build(config: ScaleConfig) -> ScaleWorld {
    let cities = ScaleWorld::resolve_cities(&config);
    let sellers = config.sellers;
    let seed = config.seed;
    let ns = Arc::new(namespace(cities));

    let mut named = vec!["client".into(), "meta".into()];
    for k in 0..cities {
        named.push(format!("city-{k}").into());
    }
    let directory = Directory::with_generated_tail(named, "seller-", sellers);
    let n = directory.len();

    // Pure helpers the factory closure can own (it outlives `ScaleWorld`
    // construction, so it cannot borrow the world).
    let city_of = move |s: usize| (mix(seed, 1, s as u64) % cities as u64) as usize;
    let cat_of = move |s: usize| (mix(seed, 2, s as u64) % CATEGORIES.len() as u64) as usize;

    let factory_ns = Arc::clone(&ns);
    // City → resident sellers, built once on the first index-server
    // touch (O(sellers)), then every further index costs only its own
    // residents — materializing *all* peers is O(sellers + cities), not
    // O(cities × sellers).
    let mut residents: Option<Vec<Vec<u32>>> = None;
    let factory = move |node: NodeId| -> Peer {
        let ns = Arc::clone(&factory_ns);
        match node {
            0 => Peer::new("client", ns).with_default_route("meta"),
            1 => {
                // Meta-index: one authoritative index entry per city.
                let mut p = Peer::new("meta", ns);
                for k in 0..cities {
                    p.catalog_mut().register(
                        CatalogEntry::index(
                            format!("city-{k}"),
                            InterestArea::of(Cell::parse([city_name(k).as_str(), "*"])),
                        )
                        .authoritative(),
                    );
                }
                p
            }
            _ if node < 2 + cities => {
                // City index server: index the base areas of its
                // resident sellers (from the shared membership map).
                let k = node - 2;
                let map = residents.get_or_insert_with(|| {
                    let mut map = vec![Vec::new(); cities];
                    for s in 0..sellers {
                        map[city_of(s)].push(s as u32);
                    }
                    map
                });
                let mut p = Peer::new(format!("city-{k}"), ns);
                for &s in &map[k] {
                    let s = s as usize;
                    let area = InterestArea::of(Cell::parse([
                        city_name(k).as_str(),
                        CATEGORIES[cat_of(s)],
                    ]));
                    p.catalog_mut()
                        .register(CatalogEntry::base(format!("seller-{s}"), area));
                }
                p
            }
            _ => {
                let s = node - 2 - cities;
                let (k, c) = (city_of(s), cat_of(s));
                let cat = CATEGORIES[c];
                let area = InterestArea::of(Cell::parse([city_name(k).as_str(), cat]));
                let mut p = Peer::new(format!("seller-{s}"), ns);
                p.add_collection("lot", area, [item(seed, s, cat)]);
                p
            }
        }
    };

    let topology = Topology::clustered(n, cities.min(n), 1_000, 40_000).with_bandwidth(100.0);
    ScaleWorld {
        harness: SimHarness::lazy(topology, directory, factory),
        client: 0,
        meta: 1,
        cities,
        sellers,
        namespace: ns,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_is_pure_and_deterministic() {
        let w1 = build(ScaleConfig::default());
        let w2 = build(ScaleConfig::default());
        assert_eq!(w1.cities, 1_000 / SELLERS_PER_CITY);
        for s in [0, 17, 999] {
            assert_eq!(w1.seller_city(s), w2.seller_city(s));
            assert_eq!(w1.seller_category(s), w2.seller_category(s));
        }
        // No peer was built to answer any of that.
        assert_eq!(w1.harness.materialized(), 0);
    }

    #[test]
    fn query_materializes_only_the_route() {
        let mut w = build(ScaleConfig {
            sellers: 400,
            ..ScaleConfig::default()
        });
        // Query the cell seller 0 actually serves, so truth is non-empty.
        let (city, cat) = (w.seller_city(0), w.seller_category(0));
        let truth = w.true_holders(city, cat);
        assert!(truth.contains(&w.seller_node(0)));

        let qid = w.harness.submit(w.client, w.query(city, cat));
        w.harness.run(1_000_000);
        let done = w.harness.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].qid, qid);
        assert!(done[0].failure.is_none(), "{:?}", done[0].failure);
        // One item per holder, all in the queried category.
        assert_eq!(done[0].items.len(), truth.len());
        for item in &done[0].items {
            assert_eq!(item.field("category").as_deref(), Some(CATEGORIES[cat]));
        }
        // Client + meta + one index + the holders — not the other 390+.
        let expect = 3 + truth.len();
        assert_eq!(w.harness.materialized(), expect);
        assert_eq!(w.harness.len(), 2 + w.cities + 400);
    }

    #[test]
    fn different_seeds_shuffle_the_world() {
        let a = build(ScaleConfig {
            seed: 1,
            ..ScaleConfig::default()
        });
        let b = build(ScaleConfig {
            seed: 2,
            ..ScaleConfig::default()
        });
        let cities_a: Vec<usize> = (0..100).map(|s| a.seller_city(s)).collect();
        let cities_b: Vec<usize> = (0..100).map(|s| b.seller_city(s)).collect();
        assert_ne!(cities_a, cities_b);
    }

    #[test]
    fn hash_assignment_spreads_sellers() {
        let w = build(ScaleConfig {
            sellers: 3_200,
            ..ScaleConfig::default()
        });
        let mut per_city = vec![0usize; w.cities];
        for s in 0..w.sellers {
            per_city[w.seller_city(s)] += 1;
        }
        // Every city inhabited, none pathologically overloaded.
        assert!(per_city.iter().all(|&c| c > 0));
        assert!(per_city.iter().all(|&c| c < 16 * 8));
    }
}
