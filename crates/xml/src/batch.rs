//! Shared item batches: the currency of clone-free evaluation.
//!
//! A [`Batch`] is an ordered collection of `Arc<Element>` item handles.
//! Everything that moves whole items around — `data` plan leaves, store
//! lookups, operator inputs/outputs — shuffles handles instead of
//! deep-copying trees: cloning a batch or filtering it into another
//! batch bumps reference counts, never item bytes. Items only
//! materialize as fresh trees at the two real boundaries: operators
//! that *construct* new items (project, join, aggregate) and the wire
//! serializer (which reads through the handles without cloning at
//! all).
//!
//! Equality and hashing are by item value (two batches with equal items
//! are equal regardless of sharing), so plans holding batches keep
//! their value semantics.

use std::ops::Index;
use std::sync::Arc;

use crate::node::Element;

/// An ordered, shareable collection of XML items (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Batch {
    items: Vec<Arc<Element>>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// An empty batch with room for `n` handles.
    pub fn with_capacity(n: usize) -> Self {
        Batch {
            items: Vec::with_capacity(n),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the batch holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends an already-shared item handle (reference-count bump).
    pub fn push(&mut self, item: Arc<Element>) {
        self.items.push(item);
    }

    /// Wraps and appends an owned item (the construction boundary:
    /// one `Arc` allocation, no tree copy).
    pub fn push_item(&mut self, item: Element) {
        self.items.push(Arc::new(item));
    }

    /// Iterates the items.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Element> + Clone {
        self.items.iter().map(|a| a.as_ref())
    }

    /// The shared handles themselves.
    pub fn handles(&self) -> &[Arc<Element>] {
        &self.items
    }

    /// Mutable iteration with copy-on-write semantics: a handle shared
    /// with another batch is detached (`Arc::make_mut`) before being
    /// handed out, so mutation never bleeds into other holders.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Element> {
        self.items.iter_mut().map(Arc::make_mut)
    }

    /// Item by position.
    pub fn get(&self, i: usize) -> Option<&Element> {
        self.items.get(i).map(|a| a.as_ref())
    }

    /// First item, if any.
    pub fn first(&self) -> Option<&Element> {
        self.get(0)
    }

    /// Appends every handle of `other` (reference-count bumps only).
    pub fn extend_shared(&mut self, other: &Batch) {
        self.items.extend(other.items.iter().cloned());
    }

    /// Deep-copies the items out into owned trees. This is the
    /// *materializing* escape hatch — only the legacy evaluator baseline
    /// and tests should need it.
    pub fn to_vec(&self) -> Vec<Element> {
        self.iter().cloned().collect()
    }
}

impl Index<usize> for Batch {
    type Output = Element;

    fn index(&self, i: usize) -> &Element {
        &self.items[i]
    }
}

impl From<Vec<Element>> for Batch {
    fn from(items: Vec<Element>) -> Self {
        items.into_iter().collect()
    }
}

impl From<Vec<Arc<Element>>> for Batch {
    fn from(items: Vec<Arc<Element>>) -> Self {
        Batch { items }
    }
}

impl FromIterator<Element> for Batch {
    fn from_iter<T: IntoIterator<Item = Element>>(iter: T) -> Self {
        Batch {
            items: iter.into_iter().map(Arc::new).collect(),
        }
    }
}

impl FromIterator<Arc<Element>> for Batch {
    fn from_iter<T: IntoIterator<Item = Arc<Element>>>(iter: T) -> Self {
        Batch {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<Element> for Batch {
    fn extend<T: IntoIterator<Item = Element>>(&mut self, iter: T) {
        self.items.extend(iter.into_iter().map(Arc::new));
    }
}

impl Extend<Arc<Element>> for Batch {
    fn extend<T: IntoIterator<Item = Arc<Element>>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

impl IntoIterator for Batch {
    type Item = Arc<Element>;
    type IntoIter = std::vec::IntoIter<Arc<Element>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Element;
    type IntoIter =
        std::iter::Map<std::slice::Iter<'a, Arc<Element>>, fn(&'a Arc<Element>) -> &'a Element>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().map(|a| a.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(name: &str) -> Element {
        Element::new(name).text("x")
    }

    #[test]
    fn collects_and_indexes() {
        let b: Batch = [item("a"), item("b")].into_iter().collect();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].name(), "a");
        assert_eq!(b.get(1).unwrap().name(), "b");
        assert!(b.get(2).is_none());
        assert_eq!(b.first().unwrap().name(), "a");
    }

    #[test]
    fn clone_shares_storage() {
        let b: Batch = [item("a")].into_iter().collect();
        let c = b.clone();
        assert!(Arc::ptr_eq(&b.handles()[0], &c.handles()[0]));
        assert_eq!(b, c);
    }

    #[test]
    fn equality_is_by_value_not_identity() {
        let b: Batch = [item("a")].into_iter().collect();
        let c: Batch = [item("a")].into_iter().collect();
        assert!(!Arc::ptr_eq(&b.handles()[0], &c.handles()[0]));
        assert_eq!(b, c);
    }

    #[test]
    fn extend_shared_bumps_refcounts() {
        let mut b: Batch = [item("a")].into_iter().collect();
        let other: Batch = [item("b")].into_iter().collect();
        b.extend_shared(&other);
        assert_eq!(b.len(), 2);
        assert!(Arc::ptr_eq(&b.handles()[1], &other.handles()[0]));
    }

    #[test]
    fn to_vec_materializes() {
        let b: Batch = [item("a"), item("b")].into_iter().collect();
        let v = b.to_vec();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].name(), "a");
    }

    #[test]
    fn iterates_by_reference_and_value() {
        let b: Batch = [item("a"), item("b")].into_iter().collect();
        let names: Vec<&str> = b.iter().map(|e| e.name()).collect();
        assert_eq!(names, ["a", "b"]);
        let names2: Vec<&str> = (&b).into_iter().map(|e| e.name()).collect();
        assert_eq!(names2, ["a", "b"]);
        assert_eq!(b.into_iter().count(), 2);
    }
}
