//! Zero-copy parsing of *canonical* XML — the exact form
//! [`crate::serialize`] emits.
//!
//! Everything MQP puts on the wire is produced by our own serializer,
//! which emits one canonical spelling: no prolog, no comments or CDATA,
//! double-quoted attributes separated by single spaces, `<name/>` for
//! empty elements, and exactly the five predefined entities (`& < >`
//! escaped everywhere, `" '` additionally in attribute values, nothing
//! else). The [`Tokenizer`] here accepts *only* that grammar, yielding
//! borrowed `&str` names and `Cow<str>` text/value slices straight off
//! the input buffer — no per-node name allocations, no per-entity
//! strings.
//!
//! Accepting only the canonical grammar buys a load-bearing guarantee:
//!
//! > If [`parse_canonical`] succeeds on `input`, then
//! > `serialize(&result) == input`, and the byte span of every element
//! > is exactly its re-serialization.
//!
//! (Property-tested in `proptests.rs`.) The envelope layer exploits
//! this to splice received bytes directly into outgoing messages
//! instead of re-serializing unchanged subtrees. Any deviation from the
//! canonical grammar — stray whitespace, `<a></a>` long forms, numeric
//! character references, single-quoted attributes — makes the parse
//! return `None`, and callers fall back to the lenient parser in
//! [`crate::parse`].

use std::borrow::Cow;

use crate::intern::Name;
use crate::node::{Element, Node};
use crate::parse::{is_name_char, is_name_start};

/// Marker error: the input strayed from the canonical grammar. Carries
/// no detail because the only response is falling back to the lenient
/// parser (which produces real diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotCanonical;

/// One token of canonical XML, borrowing from the input buffer. Text
/// and attribute values are `Cow`: borrowed when no entity needed
/// decoding, owned otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum Token<'a> {
    /// `<name` — start of an open tag; attributes follow.
    Open(&'a str),
    /// ` name="value"` inside an open tag.
    Attr {
        /// Attribute name.
        name: &'a str,
        /// Decoded attribute value.
        value: Cow<'a, str>,
    },
    /// `>` — the open tag ends; content follows.
    OpenEnd,
    /// `/>` — the element ends with no content.
    SelfClose,
    /// A run of character data (entity-decoded).
    Text(Cow<'a, str>),
    /// `</name>`.
    Close(&'a str),
}

/// A pull tokenizer over canonical XML (see module docs).
pub struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    in_tag: bool,
}

// Word-at-a-time scanning (SWAR): the tokenizer's inner loops walk
// every content byte looking for a handful of specials; doing it eight
// bytes per step is worth a measurable slice of parse time at
// data-bundle scale.

#[inline]
fn splat(b: u8) -> u64 {
    u64::from(b) * 0x0101_0101_0101_0101
}

/// 0x80 in every byte of `x` that was zero.
#[inline]
fn zero_byte_mask(x: u64) -> u64 {
    x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080
}

/// Index of the first occurrence of any special byte, or `bytes.len()`.
#[inline]
fn find_special<const N: usize>(bytes: &[u8], specials: [u8; N]) -> usize {
    let mut i = 0;
    while i + 8 <= bytes.len() {
        let w = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte chunk"));
        let mut m = 0u64;
        for s in specials {
            m |= zero_byte_mask(w ^ splat(s));
        }
        if m != 0 {
            return i + (m.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < bytes.len() {
        if specials.contains(&bytes[i]) {
            return i;
        }
        i += 1;
    }
    bytes.len()
}

impl<'a> Tokenizer<'a> {
    /// Tokenizes `input` from the beginning.
    pub fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            pos: 0,
            in_tag: false,
        }
    }

    /// Current byte offset: the start of the next token (or the end of
    /// input). Because the grammar has no skippable whitespace, this is
    /// exact — callers use it to record element byte spans.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The next token, `Ok(None)` at end of input, or [`NotCanonical`].
    pub fn next_token(&mut self) -> Result<Option<Token<'a>>, NotCanonical> {
        if self.in_tag {
            return self.tag_token().map(Some);
        }
        let Some(&b) = self.input.as_bytes().get(self.pos) else {
            return Ok(None);
        };
        if b != b'<' {
            return self.scan_text().map(|t| Some(Token::Text(t)));
        }
        if self.input.as_bytes().get(self.pos + 1) == Some(&b'/') {
            self.pos += 2;
            let name = self.scan_name()?;
            if self.input.as_bytes().get(self.pos) != Some(&b'>') {
                return Err(NotCanonical);
            }
            self.pos += 1;
            Ok(Some(Token::Close(name)))
        } else {
            self.pos += 1;
            let name = self.scan_name()?;
            self.in_tag = true;
            Ok(Some(Token::Open(name)))
        }
    }

    fn tag_token(&mut self) -> Result<Token<'a>, NotCanonical> {
        match self.input.as_bytes().get(self.pos) {
            Some(b' ') => {
                self.pos += 1;
                let name = self.scan_name()?;
                if !self.input[self.pos..].starts_with("=\"") {
                    return Err(NotCanonical);
                }
                self.pos += 2;
                let value = self.scan_attr_value()?;
                Ok(Token::Attr { name, value })
            }
            Some(b'>') => {
                self.pos += 1;
                self.in_tag = false;
                Ok(Token::OpenEnd)
            }
            Some(b'/') if self.input.as_bytes().get(self.pos + 1) == Some(&b'>') => {
                self.pos += 2;
                self.in_tag = false;
                Ok(Token::SelfClose)
            }
            _ => Err(NotCanonical),
        }
    }

    fn scan_name(&mut self) -> Result<&'a str, NotCanonical> {
        let bytes = self.input.as_bytes();
        let start = self.pos;
        match bytes.get(self.pos) {
            Some(&b) if is_name_start(b) => self.pos += 1,
            _ => return Err(NotCanonical),
        }
        while matches!(bytes.get(self.pos), Some(&b) if is_name_char(b)) {
            self.pos += 1;
        }
        Ok(&self.input[start..self.pos])
    }

    /// Cursor is just past the opening quote; consumes through the
    /// closing quote. Rejects raw `< > '` (the serializer escapes them
    /// in attribute values) and non-canonical entities.
    fn scan_attr_value(&mut self) -> Result<Cow<'a, str>, NotCanonical> {
        let mut owned: Option<String> = None;
        loop {
            let rest = &self.input.as_bytes()[self.pos..];
            let n = find_special(rest, [b'"', b'&', b'<', b'>', b'\'']);
            if n == rest.len() {
                return Err(NotCanonical);
            }
            let run = &self.input[self.pos..self.pos + n];
            match rest[n] {
                b'"' => {
                    self.pos += n + 1;
                    return Ok(match owned {
                        None => Cow::Borrowed(run),
                        Some(mut s) => {
                            s.push_str(run);
                            Cow::Owned(s)
                        }
                    });
                }
                b'&' => {
                    self.pos += n;
                    let ch = self.entity(true)?;
                    let s = owned.get_or_insert_with(String::new);
                    s.push_str(run);
                    s.push(ch);
                }
                _ => return Err(NotCanonical),
            }
        }
    }

    /// A maximal run of character data. Rejects raw `>` (the serializer
    /// escapes it in text) and non-canonical entities; stops at `<`.
    fn scan_text(&mut self) -> Result<Cow<'a, str>, NotCanonical> {
        let mut owned: Option<String> = None;
        let mut start = self.pos;
        loop {
            let rest = &self.input.as_bytes()[self.pos..];
            let n = find_special(rest, [b'<', b'&', b'>']);
            let run = &self.input[self.pos..self.pos + n];
            self.pos += n;
            match self.input.as_bytes().get(self.pos) {
                Some(b'&') => {
                    let ch = self.entity(false)?;
                    let s = owned.get_or_insert_with(String::new);
                    s.push_str(run);
                    s.push(ch);
                    start = self.pos;
                }
                Some(b'>') => return Err(NotCanonical),
                // `<` or end of input: the run is complete.
                _ => {
                    return Ok(match owned {
                        None => Cow::Borrowed(run),
                        Some(mut s) => {
                            s.push_str(&self.input[start..self.pos]);
                            Cow::Owned(s)
                        }
                    });
                }
            }
        }
    }

    /// Cursor on `&`: accepts exactly the entities the serializer
    /// emits in this context, advancing past the `;`.
    fn entity(&mut self, in_attr: bool) -> Result<char, NotCanonical> {
        const CANONICAL: [(&str, char, bool); 5] = [
            ("&amp;", '&', false),
            ("&lt;", '<', false),
            ("&gt;", '>', false),
            ("&quot;", '"', true),
            ("&apos;", '\'', true),
        ];
        let rest = &self.input[self.pos..];
        for (pat, ch, attr_only) in CANONICAL {
            if (!attr_only || in_attr) && rest.starts_with(pat) {
                self.pos += pat.len();
                return Ok(ch);
            }
        }
        Err(NotCanonical)
    }
}

/// Byte span of one element in the input, with the spans of its direct
/// element children (recorded down to the depth the caller asked for).
/// `input[start..end]` is exactly the element's serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Offset of the element's `<`.
    pub start: usize,
    /// Offset one past the element's closing `>`.
    pub end: usize,
    /// Spans of direct element children, in document order (empty when
    /// below the recorded depth).
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// The element's bytes within the original input.
    pub fn slice<'a>(&self, input: &'a str) -> &'a str {
        &input[self.start..self.end]
    }
}

/// Builds [`Element`] subtrees from a [`Tokenizer`], accumulating
/// children in one reused scratch buffer so each finished element gets
/// a single exact-size allocation instead of push-doubling growth —
/// the difference is measurable at data-bundle scale (hundreds of
/// thousands of nodes per plan).
#[derive(Default)]
pub struct TreeBuilder {
    scratch: Vec<Node>,
}

impl TreeBuilder {
    /// A builder with an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the element whose `Open(name)` token was just consumed:
    /// reads its attributes, content, and closing tag. On error the
    /// scratch buffer may hold partial nodes — call [`TreeBuilder::build`]
    /// again only after discarding the failed parse (both entry points
    /// here do so by resetting).
    ///
    /// Drives the tokenizer's scanner primitives directly rather than
    /// pulling `Token`s: this loop runs once per node of every data
    /// bundle on the wire, and skipping the enum round-trip is a
    /// measurable win. Acceptance is identical to the token loop.
    pub fn build(&mut self, tok: &mut Tokenizer<'_>, name: &str) -> Result<Element, NotCanonical> {
        let mut el = Element::new(name);
        loop {
            match tok.input.as_bytes().get(tok.pos) {
                Some(b' ') => {
                    tok.pos += 1;
                    let aname = tok.scan_name()?;
                    if !tok.input[tok.pos..].starts_with("=\"") {
                        return Err(NotCanonical);
                    }
                    tok.pos += 2;
                    let value = tok.scan_attr_value()?;
                    if el.get_attr(aname).is_some() {
                        return Err(NotCanonical);
                    }
                    el.set_attr(aname, value);
                }
                Some(b'>') => {
                    tok.pos += 1;
                    break;
                }
                Some(b'/') if tok.input.as_bytes().get(tok.pos + 1) == Some(&b'>') => {
                    tok.pos += 2;
                    tok.in_tag = false;
                    return Ok(el);
                }
                _ => return Err(NotCanonical),
            }
        }
        tok.in_tag = false;
        let mark = self.scratch.len();
        loop {
            match tok.input.as_bytes().get(tok.pos) {
                None => return Err(NotCanonical),
                Some(b'<') => {
                    if tok.input.as_bytes().get(tok.pos + 1) == Some(&b'/') {
                        tok.pos += 2;
                        let close = tok.scan_name()?;
                        if tok.input.as_bytes().get(tok.pos) != Some(&b'>') {
                            return Err(NotCanonical);
                        }
                        tok.pos += 1;
                        // `<a></a>` is the serializer's `<a/>`:
                        // long-form empty elements are not canonical.
                        if close != el.name() || self.scratch.len() == mark {
                            return Err(NotCanonical);
                        }
                        el.set_children(self.scratch.split_off(mark));
                        return Ok(el);
                    }
                    tok.pos += 1;
                    let child_name = tok.scan_name()?;
                    tok.in_tag = true;
                    let child = self.build(tok, child_name)?;
                    self.scratch.push(Node::Element(child));
                }
                Some(_) => {
                    let t = tok.scan_text()?;
                    self.scratch.push(Node::Text(t.into_owned()));
                }
            }
        }
    }
}

/// Skips the element whose `Open(name)` token was just consumed,
/// enforcing exactly the canonical rules [`TreeBuilder::build`] does —
/// duplicate attributes, long-form empties, matched close tags —
/// without constructing any nodes. Accepts precisely the inputs
/// `build` accepts (property-tested), which is what lets callers
/// validate a subtree now and defer materializing it.
pub fn skip_subtree<'a>(tok: &mut Tokenizer<'a>, name: &str) -> Result<(), NotCanonical> {
    let mut attrs: Vec<&'a str> = Vec::new();
    loop {
        match tok.next_token()?.ok_or(NotCanonical)? {
            Token::Attr { name: a, .. } => {
                if attrs.contains(&a) {
                    return Err(NotCanonical);
                }
                attrs.push(a);
            }
            Token::SelfClose => return Ok(()),
            Token::OpenEnd => break,
            _ => return Err(NotCanonical),
        }
    }
    let mut children = 0usize;
    loop {
        match tok.next_token()?.ok_or(NotCanonical)? {
            Token::Text(_) => children += 1,
            Token::Open(n) => {
                skip_subtree(tok, n)?;
                children += 1;
            }
            Token::Close(c) => {
                if c != name || children == 0 {
                    return Err(NotCanonical);
                }
                return Ok(());
            }
            _ => return Err(NotCanonical),
        }
    }
}

/// Parses a canonical document: exactly one element, nothing before or
/// after. Returns `None` when the input deviates from the canonical
/// grammar (callers fall back to [`crate::parse_document`]).
pub fn parse_canonical(input: &str) -> Option<Element> {
    let mut tok = Tokenizer::new(input);
    let Ok(Some(Token::Open(name))) = tok.next_token() else {
        return None;
    };
    let root = TreeBuilder::new().build(&mut tok, name).ok()?;
    match tok.next_token() {
        Ok(None) => Some(root),
        _ => None, // trailing content, or junk after the root
    }
}

/// Like [`parse_canonical`], additionally recording element byte spans
/// `span_depth` levels below the root (0 = just the root's span).
pub fn parse_canonical_spanned(input: &str, span_depth: usize) -> Option<(Element, SpanNode)> {
    let mut tok = Tokenizer::new(input);
    let Ok(Some(Token::Open(name))) = tok.next_token() else {
        return None;
    };
    let (root, span) = parse_element(&mut tok, name, 0, span_depth).ok()?;
    match tok.next_token() {
        Ok(None) => Some((root, span)),
        _ => None, // trailing content, or junk after the root
    }
}

fn parse_element(
    tok: &mut Tokenizer<'_>,
    name: &str,
    start: usize,
    span_depth: usize,
) -> Result<(Element, SpanNode), NotCanonical> {
    let name = Name::new(name);
    let mut el = Element::new(name.clone());
    loop {
        match tok.next_token()?.ok_or(NotCanonical)? {
            Token::Attr { name, value } => {
                // The serializer never emits duplicates; let the
                // lenient parser produce the proper error.
                if el.get_attr(name).is_some() {
                    return Err(NotCanonical);
                }
                el.set_attr(name, value);
            }
            Token::SelfClose => {
                let span = SpanNode {
                    start,
                    end: tok.pos(),
                    children: Vec::new(),
                };
                return Ok((el, span));
            }
            Token::OpenEnd => break,
            _ => return Err(NotCanonical),
        }
    }
    let mut children = Vec::new();
    loop {
        let child_start = tok.pos();
        match tok.next_token()?.ok_or(NotCanonical)? {
            Token::Text(t) => el.push_child(Node::Text(t.into_owned())),
            Token::Open(child_name) => {
                let (child, span) =
                    parse_element(tok, child_name, child_start, span_depth.saturating_sub(1))?;
                if span_depth > 0 {
                    children.push(span);
                }
                el.push_child(Node::Element(child));
            }
            Token::Close(close) => {
                // `<a></a>` is the serializer's `<a/>`: long-form empty
                // elements are not canonical.
                if close != name || el.children().is_empty() {
                    return Err(NotCanonical);
                }
                let span = SpanNode {
                    start,
                    end: tok.pos(),
                    children,
                };
                return Ok((el, span));
            }
            _ => return Err(NotCanonical),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_document, serialize};

    fn roundtrip(src: &str) -> Element {
        let e = parse_canonical(src).expect("canonical input must parse");
        assert_eq!(serialize(&e), src, "byte-identity guarantee");
        assert_eq!(e, parse_document(src).unwrap(), "agrees with lenient");
        e
    }

    #[test]
    fn accepts_serializer_output() {
        let e = roundtrip(
            r#"<plan target="h:1"><select pred="price &lt; 10"><urn name="urn:ForSale:Portland-CDs"/></select>tail</plan>"#,
        );
        assert_eq!(e.name(), "plan");
        assert_eq!(e.get_attr("target"), Some("h:1"));
        let sel = e.first("select").unwrap();
        assert_eq!(sel.get_attr("pred"), Some("price < 10"));
    }

    #[test]
    fn text_entities_decode() {
        let e = roundtrip("<a>x &amp; y &lt; z &gt; w</a>");
        assert_eq!(e.direct_text(), "x & y < z > w");
    }

    #[test]
    fn attr_entities_decode() {
        let e = roundtrip(r#"<a k="&quot;q&apos; &amp;&lt;&gt;"/>"#);
        assert_eq!(e.get_attr("k"), Some("\"q' &<>"));
    }

    #[test]
    fn non_canonical_forms_rejected() {
        for src in [
            "",
            " <a/>",                       // leading whitespace
            "<a/> ",                       // trailing whitespace
            "<a></a>",                     // long-form empty element
            "<a x='1'/>",                  // single-quoted attribute
            "<a  x=\"1\"/>",               // double space
            "<a x=\"1\" />",               // space before />
            "<a x = \"1\"/>",              // spaces around =
            "<a>&#65;</a>",                // numeric character reference
            "<a>&quot;</a>",               // attr-only entity in text
            "<a>1 > 0</a>",                // raw > in text
            "<a k=\"x>y\"/>",              // raw > in attribute value
            "<a k=\"x'y\"/>",              // raw ' in attribute value
            "<?xml version=\"1.0\"?><a/>", // prolog
            "<!-- c --><a/>",              // comment
            "<a><![CDATA[x]]></a>",        // CDATA
            "<a><b></a></b>",              // mismatched tags
            "<a x=\"1\" x=\"2\"/>",        // duplicate attribute
            "<a/><b/>",                    // two roots
            "<a",                          // EOF in tag
            "<a>text",                     // EOF in content
        ] {
            assert!(parse_canonical(src).is_none(), "{src:?} should fall back");
        }
    }

    #[test]
    fn spans_cover_children() {
        let src = "<mqp><plan><select/></plan><provenance><visit/><visit/></provenance></mqp>";
        let (root, span) = parse_canonical_spanned(src, 2).unwrap();
        assert_eq!((span.start, span.end), (0, src.len()));
        assert_eq!(span.children.len(), 2);
        assert_eq!(span.children[0].slice(src), "<plan><select/></plan>");
        assert_eq!(span.children[0].children[0].slice(src), "<select/>");
        let prov = &span.children[1];
        assert_eq!(prov.children.len(), 2);
        assert_eq!(prov.children[0].slice(src), "<visit/>");
        // Depth 2 means grandchildren record no further spans.
        assert!(prov.children[0].children.is_empty());
        assert_eq!(root.child_elements().count(), 2);
    }

    #[test]
    fn tokenizer_borrows_when_no_entities() {
        let src = r#"<a k="plain">text</a>"#;
        let mut tok = Tokenizer::new(src);
        let mut saw_borrowed = 0;
        while let Ok(Some(t)) = tok.next_token() {
            match t {
                Token::Attr { value, .. } => {
                    assert!(matches!(value, Cow::Borrowed(_)));
                    saw_borrowed += 1;
                }
                Token::Text(t) => {
                    assert!(matches!(t, Cow::Borrowed(_)));
                    saw_borrowed += 1;
                }
                _ => {}
            }
        }
        assert_eq!(saw_borrowed, 2);
    }
}
