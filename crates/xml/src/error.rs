//! Parse errors with byte-offset positions.

use std::fmt;

/// Result alias for XML parsing.
pub type Result<T> = std::result::Result<T, ParseError>;

/// An error produced while parsing an XML document or an XPath expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub kind: ErrorKind,
}

/// The category of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that cannot start or continue the expected construct.
    UnexpectedChar(char),
    /// `</close>` did not match the open tag.
    MismatchedTag { open: String, close: String },
    /// An entity reference (`&...;`) that we do not recognize.
    UnknownEntity(String),
    /// Invalid numeric character reference.
    BadCharRef(String),
    /// Document contained trailing non-whitespace content after the root.
    TrailingContent,
    /// Document had no root element.
    NoRootElement,
    /// An XPath expression was malformed.
    BadPath(String),
    /// Attribute appears twice on one element.
    DuplicateAttribute(String),
}

impl ParseError {
    pub(crate) fn new(offset: usize, kind: ErrorKind) -> Self {
        ParseError { offset, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: ", self.offset)?;
        match &self.kind {
            ErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ErrorKind::MismatchedTag { open, close } => {
                write!(f, "mismatched tag: <{open}> closed by </{close}>")
            }
            ErrorKind::UnknownEntity(e) => write!(f, "unknown entity &{e};"),
            ErrorKind::BadCharRef(e) => write!(f, "bad character reference &#{e};"),
            ErrorKind::TrailingContent => write!(f, "trailing content after root element"),
            ErrorKind::NoRootElement => write!(f, "no root element"),
            ErrorKind::BadPath(p) => write!(f, "bad XPath expression: {p}"),
            ErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_kind() {
        let e = ParseError::new(17, ErrorKind::UnknownEntity("nbsp".into()));
        let s = e.to_string();
        assert!(s.contains("17"), "{s}");
        assert!(s.contains("nbsp"), "{s}");
    }

    #[test]
    fn display_mismatched_tag() {
        let e = ParseError::new(
            0,
            ErrorKind::MismatchedTag {
                open: "a".into(),
                close: "b".into(),
            },
        );
        assert_eq!(
            e.to_string(),
            "XML parse error at byte 0: mismatched tag: <a> closed by </b>"
        );
    }
}
