//! Interned element/attribute names.
//!
//! Plan vocabularies are tiny — a travelling MQP uses a dozen element
//! names (`select`, `join`, `urn`, …) repeated across thousands of
//! nodes, and data bundles repeat their item schema for every row. A
//! [`Name`] is an `Arc<str>` deduplicated through a thread-local pool,
//! so parsing a document allocates one name per *distinct* tag instead
//! of one per node, cloning a tree bumps reference counts instead of
//! copying bytes, and equality checks usually reduce to a pointer
//! compare.
//!
//! The pool is thread-local (no locks on the hot path); names crossing
//! threads stay valid — they just stop sharing storage with later
//! interns on the other thread. The pool is capped so hostile inputs
//! with unbounded vocabularies cannot pin memory: past the cap, names
//! are still constructed, just not remembered.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Upper bound on distinct names remembered per thread. Real plan and
/// data vocabularies are a few dozen names; this is a safety valve, not
/// a tuning knob.
const POOL_CAP: usize = 1 << 16;

/// FxHash-style multiply-rotate hasher for the pool: names are short
/// (a handful of bytes) and interning sits on the parse hot path, where
/// SipHash's per-lookup cost is measurable. Not DoS-resistant — the
/// pool is capped and per-thread, so the worst an adversarial
/// vocabulary can do is degrade its own thread's probe chains.
///
/// Exposed (as [`FxBuildHasher`]) for other *bounded, per-query* hash
/// tables with the same trade-off — the engine's join-key indexes live
/// for one evaluation and are sized by one batch, so an adversarial
/// key set can only degrade its own query's probe chains.
#[derive(Default)]
pub struct FxHasher(u64);

/// `BuildHasher` for [`FxHasher`] (see its DoS caveat).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | u64::from(b);
        }
        self.0 = (self.0.rotate_left(5) ^ tail).wrapping_mul(SEED);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type Pool = HashSet<Arc<str>, BuildHasherDefault<FxHasher>>;

/// A tiny most-recently-used front for the pool: parsed documents
/// repeat a handful of names back to back (`item`, `title`, `price`,
/// …), so most interns resolve with one or two short string compares
/// and never touch the hash table.
#[derive(Default)]
struct Mru {
    slots: [Option<Arc<str>>; 4],
    next: usize,
}

impl Mru {
    fn get(&self, s: &str) -> Option<Arc<str>> {
        self.slots
            .iter()
            .flatten()
            .find(|a| ***a == *s)
            .map(Arc::clone)
    }

    fn put(&mut self, a: Arc<str>) {
        self.slots[self.next] = Some(a);
        self.next = (self.next + 1) % self.slots.len();
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
    static MRU: RefCell<Mru> = RefCell::new(Mru::default());
}

/// An interned element or attribute name (see module docs).
///
/// Behaves like an immutable string: it derefs to `str`, compares and
/// hashes by content (so `HashMap<Name, _>` lookups by `&str` work via
/// `Borrow`), and `Display`s without quotes.
#[derive(Clone)]
pub struct Name(Arc<str>);

impl Name {
    /// Interns `s`, returning the pooled copy when one exists.
    pub fn new(s: &str) -> Name {
        if let Some(a) = MRU.with(|m| m.borrow().get(s)) {
            return Name(a);
        }
        let a = POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if let Some(a) = pool.get(s) {
                return Arc::clone(a);
            }
            let a: Arc<str> = Arc::from(s);
            if pool.len() < POOL_CAP {
                pool.insert(Arc::clone(&a));
            }
            a
        });
        MRU.with(|m| m.borrow_mut().put(Arc::clone(&a)));
        Name(a)
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for Name {
    fn default() -> Self {
        Name::new("")
    }
}

impl Deref for Name {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::borrow::Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Same-pool names share storage, so the common case is one
        // pointer compare; cross-thread names fall back to bytes.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Name {}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Content order (same as `str`), with the usual pointer-equality
        // fast path for pooled names.
        if Arc::ptr_eq(&self.0, &other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `str::hash` for the `Borrow<str>` contract.
        (*self.0).hash(state);
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == other.as_str()
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::new(s)
    }
}

impl From<&String> for Name {
    fn from(s: &String) -> Name {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name::new(&s)
    }
}

impl From<&Name> for Name {
    fn from(n: &Name) -> Name {
        n.clone()
    }
}

impl From<Name> for String {
    fn from(n: Name) -> String {
        n.as_str().to_owned()
    }
}

impl From<&Name> for String {
    fn from(n: &Name) -> String {
        n.as_str().to_owned()
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn interning_shares_storage() {
        let a = Name::new("select");
        let b = Name::new("select");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn compares_with_str_both_ways() {
        let n = Name::new("plan");
        assert!(n == "plan");
        assert!("plan" == n);
        assert!(n == *"plan");
        assert!(n != "plam");
        assert_eq!(n, "plan".to_owned());
    }

    #[test]
    fn map_lookup_by_str() {
        let mut m: HashMap<Name, u32> = HashMap::new();
        m.insert(Name::new("price"), 1);
        assert_eq!(m.get("price"), Some(&1));
        assert_eq!(m.get("title"), None);
    }

    #[test]
    fn cross_thread_names_still_equal() {
        let a = Name::new("join");
        let b = std::thread::spawn(|| Name::new("join")).join().unwrap();
        assert!(!Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn display_and_debug() {
        let n = Name::new("a-b");
        assert_eq!(n.to_string(), "a-b");
        assert_eq!(format!("{n:?}"), "\"a-b\"");
    }

    #[test]
    fn string_conversions() {
        let n = Name::from("x".to_owned());
        let s: String = n.clone().into();
        assert_eq!(s, "x");
        assert_eq!(n.as_str(), "x");
    }
}
