//! # mqp-xml — XML substrate for mutant query plans
//!
//! The CIDR 2003 paper serializes query plans, verbatim data, and partial
//! results as XML, and its prototype used the Niagara XML engine. This
//! crate is our stand-in substrate: a small, dependency-free XML tree
//! model ([`Element`], [`Node`]), a recursive-descent parser
//! ([`parse()`](parse::parse)), a serializer with correct escaping, and an XPath-subset
//! evaluator ([`xpath::Path`]) used for collection identifiers
//! (e.g. `/data[@id='245']`) and value extraction inside predicates.
//!
//! Design goals:
//! * **Round-trip fidelity** — `parse(serialize(e)) == e` for any tree the
//!   model can represent (property-tested).
//! * **Determinism** — attribute order is preserved, no hash-map ordering
//!   leaks into the wire format, so simulator runs are reproducible.
//! * **Cheap size accounting** — [`Element::serialized_len`] lets the
//!   network layer charge bytes without materializing strings.

pub mod batch;
pub mod canon;
pub mod error;
pub mod intern;
pub mod node;
pub mod parse;
pub mod serialize;
pub mod xpath;

pub use batch::Batch;
pub use canon::{
    parse_canonical, parse_canonical_spanned, skip_subtree, NotCanonical, SpanNode, Token,
    Tokenizer, TreeBuilder,
};
pub use error::{ParseError, Result};
pub use intern::{FxBuildHasher, Name};
pub use node::{Element, Node};
pub use parse::{parse, parse_document};
pub use serialize::{serialize, serialize_into, serialize_pretty};

#[cfg(test)]
mod proptests;
