//! The XML tree model: [`Element`] and [`Node`].
//!
//! The model is deliberately small: elements with ordered attributes and
//! mixed children (elements and text). Comments, processing instructions
//! and the document prolog are discarded at parse time — mutant query
//! plans never carry them, and dropping them keeps structural equality
//! meaningful for plan reduction.

use std::borrow::Cow;
use std::fmt;

use crate::intern::Name;

/// A child of an [`Element`]: either a nested element or a text run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// A run of character data (already entity-decoded).
    Text(String),
}

impl Node {
    /// Returns the contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// Returns the contained text, if this node is a text run.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Element(_) => None,
            Node::Text(t) => Some(t),
        }
    }

    /// True if this is a text node consisting only of XML whitespace.
    pub fn is_whitespace(&self) -> bool {
        matches!(self, Node::Text(t) if t.chars().all(|c| c.is_ascii_whitespace()))
    }
}

impl From<Element> for Node {
    fn from(e: Element) -> Self {
        Node::Element(e)
    }
}

impl From<String> for Node {
    fn from(t: String) -> Self {
        Node::Text(t)
    }
}

impl From<&str> for Node {
    fn from(t: &str) -> Self {
        Node::Text(t.to_owned())
    }
}

/// An XML element: a name, ordered `(name, value)` attributes, and
/// ordered mixed children.
///
/// Element and attribute names are interned [`Name`]s — deduplicated
/// `Arc<str>`s — so a parsed document allocates per *distinct* name,
/// not per node, and cloning a subtree copies no name bytes.
///
/// Attribute order is preserved so serialization is deterministic; lookup
/// is linear, which is faster than hashing for the handful of attributes
/// plan nodes carry.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Element {
    name: Name,
    attributes: Vec<(Name, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<Name>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The tag name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tag name as its interned handle (cheap to clone and compare).
    pub fn interned_name(&self) -> &Name {
        &self.name
    }

    /// Renames the element in place.
    pub fn set_name(&mut self, name: impl Into<Name>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Builder-style construction
    // ------------------------------------------------------------------

    /// Adds (or replaces) an attribute; returns `self` for chaining.
    pub fn attr(mut self, name: impl Into<Name>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Appends a child node; returns `self` for chaining.
    pub fn child(mut self, node: impl Into<Node>) -> Self {
        self.children.push(node.into());
        self
    }

    /// Appends a text child; returns `self` for chaining.
    pub fn text(self, text: impl Into<String>) -> Self {
        self.child(Node::Text(text.into()))
    }

    /// Appends many element children; returns `self` for chaining.
    pub fn children_from(mut self, iter: impl IntoIterator<Item = Element>) -> Self {
        self.children.extend(iter.into_iter().map(Node::Element));
        self
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Sets an attribute, replacing an existing one of the same name.
    pub fn set_attr(&mut self, name: impl Into<Name>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Removes an attribute, returning its value if present.
    pub fn remove_attr(&mut self, name: &str) -> Option<String> {
        let idx = self.attributes.iter().position(|(n, _)| n == name)?;
        Some(self.attributes.remove(idx).1)
    }

    /// Appends a child node.
    pub fn push_child(&mut self, node: impl Into<Node>) {
        self.children.push(node.into());
    }

    /// Removes all children, returning them.
    pub fn take_children(&mut self) -> Vec<Node> {
        std::mem::take(&mut self.children)
    }

    /// Replaces the children wholesale.
    pub fn set_children(&mut self, children: Vec<Node>) {
        self.children = children;
    }

    /// Drops whitespace-only text children, recursively. Useful after
    /// parsing pretty-printed documents when only structure matters.
    pub fn trim_whitespace(&mut self) {
        self.children.retain(|c| !c.is_whitespace());
        for c in &mut self.children {
            if let Node::Element(e) = c {
                e.trim_whitespace();
            }
        }
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Attribute value by name.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> &[(Name, String)] {
        &self.attributes
    }

    /// All children in document order.
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Mutable access to children.
    pub fn children_mut(&mut self) -> &mut Vec<Node> {
        &mut self.children
    }

    /// Iterator over element children only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// First element child with the given tag name.
    pub fn first(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All element children with the given tag name. (Deliberately
    /// does *not* intern `name`: lookups with arbitrary caller strings
    /// must not populate the interner pool.)
    pub fn all(&self, name: &str) -> impl Iterator<Item = &Element> {
        let name = name.to_owned();
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Concatenated text content of this element's *direct* text
    /// children. Borrows when there is at most one text child (the
    /// common case for data fields); allocates only for mixed content.
    pub fn direct_text(&self) -> Cow<'_, str> {
        let mut texts = self.children.iter().filter_map(Node::as_text);
        let Some(first) = texts.next() else {
            return Cow::Borrowed("");
        };
        let Some(second) = texts.next() else {
            return Cow::Borrowed(first);
        };
        let mut out = String::with_capacity(first.len() + second.len());
        out.push_str(first);
        out.push_str(second);
        for t in texts {
            out.push_str(t);
        }
        Cow::Owned(out)
    }

    /// Concatenated text content of the whole subtree (like XPath
    /// `string()`). Borrows along single-child chains — `<price>9.50
    /// </price>` costs nothing — and allocates only for genuinely mixed
    /// subtrees.
    pub fn deep_text(&self) -> Cow<'_, str> {
        match self.children.as_slice() {
            [] => Cow::Borrowed(""),
            [Node::Text(t)] => Cow::Borrowed(t),
            [Node::Element(e)] => e.deep_text(),
            _ => {
                let mut out = String::new();
                self.collect_text(&mut out);
                Cow::Owned(out)
            }
        }
    }

    fn collect_text(&self, out: &mut String) {
        for c in &self.children {
            match c {
                Node::Text(t) => out.push_str(t),
                Node::Element(e) => e.collect_text(out),
            }
        }
    }

    /// Text content of the first child element with the given name,
    /// trimmed. The most common accessor when reading data bundles such as
    /// `<item><price>9.50</price>…</item>`.
    pub fn field(&self, name: &str) -> Option<String> {
        self.first(name).map(|e| e.deep_text().trim().to_owned())
    }

    /// Parses [`Element::field`] as `f64`.
    pub fn field_f64(&self, name: &str) -> Option<f64> {
        self.field(name)?.parse().ok()
    }

    /// Number of nodes in the subtree (elements + text runs), a cheap
    /// proxy for plan size used by tests and heuristics.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| match c {
                Node::Element(e) => e.subtree_size(),
                Node::Text(_) => 1,
            })
            .sum::<usize>()
    }

    /// Exact length in bytes of [`crate::serialize()`]'s output for this
    /// element, computed without allocating the string. The network
    /// simulator charges message sizes with this.
    pub fn serialized_len(&self) -> usize {
        // "<" name attrs ">" children "</" name ">"  (or "<" name attrs "/>")
        let attrs: usize = self
            .attributes
            .iter()
            .map(|(n, v)| 1 + n.len() + 2 + escaped_len(v, true) + 1)
            .sum();
        if self.children.is_empty() {
            1 + self.name.len() + attrs + 2
        } else {
            let kids: usize = self
                .children
                .iter()
                .map(|c| match c {
                    Node::Element(e) => e.serialized_len(),
                    Node::Text(t) => escaped_len(t, false),
                })
                .sum();
            (1 + self.name.len() + attrs + 1) + kids + (2 + self.name.len() + 1)
        }
    }
}

/// Length of `s` after XML escaping. `in_attr` additionally escapes
/// quotes, matching the serializer exactly.
pub(crate) fn escaped_len(s: &str, in_attr: bool) -> usize {
    s.chars()
        .map(|c| match c {
            '&' => 5,             // &amp;
            '<' => 4,             // &lt;
            '>' => 4,             // &gt;
            '"' if in_attr => 6,  // &quot;
            '\'' if in_attr => 6, // &apos;
            c => c.len_utf8(),
        })
        .sum()
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::serialize(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("item")
            .attr("id", "245")
            .child(Element::new("name").text("golf clubs"))
            .child(Element::new("price").text("99.95"))
    }

    #[test]
    fn builder_and_access() {
        let e = sample();
        assert_eq!(e.name(), "item");
        assert_eq!(e.get_attr("id"), Some("245"));
        assert_eq!(e.field("name").as_deref(), Some("golf clubs"));
        assert_eq!(e.field_f64("price"), Some(99.95));
        assert!(e.first("missing").is_none());
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("a").attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.get_attr("k"), Some("2"));
        assert_eq!(e.attrs().len(), 1);
    }

    #[test]
    fn remove_attr_returns_value() {
        let mut e = Element::new("a").attr("k", "1");
        assert_eq!(e.remove_attr("k"), Some("1".into()));
        assert_eq!(e.remove_attr("k"), None);
    }

    #[test]
    fn direct_vs_deep_text() {
        let e = Element::new("a")
            .text("x")
            .child(Element::new("b").text("y"))
            .text("z");
        assert_eq!(e.direct_text(), "xz");
        assert_eq!(e.deep_text(), "xyz");
    }

    #[test]
    fn subtree_size_counts_all_nodes() {
        assert_eq!(sample().subtree_size(), 5); // item, name, text, price, text
    }

    #[test]
    fn serialized_len_matches_serializer() {
        let e = sample();
        assert_eq!(e.serialized_len(), crate::serialize(&e).len());
        let tricky = Element::new("t").attr("q", "a\"b'c<d>e&f").text("x<y>&z");
        assert_eq!(tricky.serialized_len(), crate::serialize(&tricky).len());
        let empty = Element::new("e").attr("a", "1");
        assert_eq!(empty.serialized_len(), crate::serialize(&empty).len());
    }

    #[test]
    fn trim_whitespace_recurses() {
        let mut e = Element::new("a")
            .text("  \n")
            .child(Element::new("b").text("  ").text("keep"));
        e.trim_whitespace();
        assert_eq!(e.children().len(), 1);
        let b = e.first("b").unwrap();
        assert_eq!(b.children().len(), 1);
        assert_eq!(b.direct_text(), "keep");
    }

    #[test]
    fn all_filters_by_name() {
        let e = Element::new("r")
            .child(Element::new("x"))
            .child(Element::new("y"))
            .child(Element::new("x"));
        assert_eq!(e.all("x").count(), 2);
    }
}
