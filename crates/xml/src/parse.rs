//! Recursive-descent XML parser.
//!
//! Supports the subset MQPs and data bundles need: elements, attributes
//! (single- or double-quoted), character data, CDATA sections, comments
//! (skipped), processing instructions and the XML declaration (skipped),
//! and the five predefined entities plus numeric character references.
//! DTDs are not supported (a `<!DOCTYPE…>` is rejected) — plans never
//! carry them and rejecting them avoids entity-expansion attacks from
//! untrusted peers.

use crate::error::{ErrorKind, ParseError, Result};
use crate::node::{Element, Node};

/// Parses a complete document: optional prolog, a single root element,
/// optional trailing whitespace. Returns the root element.
pub fn parse_document(input: &str) -> Result<Element> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc();
    if !p.at_end() {
        return Err(p.err(ErrorKind::TrailingContent));
    }
    Ok(root)
}

/// Parses a single element from the input. This is the entry point used
/// when deserializing MQPs.
///
/// Fast path: wire messages are produced by [`crate::serialize`], whose
/// canonical output the zero-copy parser in [`crate::canon`] accepts
/// directly (borrowed name/text slices, interned names, no per-entity
/// allocations). Anything else — pretty-printed plans, prologs,
/// comments, hand-written XML — falls back to this module's lenient
/// recursive-descent parser, which also produces the real error when
/// the input is malformed.
pub fn parse(input: &str) -> Result<Element> {
    if let Some(e) = crate::canon::parse_canonical(input) {
        return Ok(e);
    }
    parse_document(input)
}

/// True for bytes that may start an XML name (shared with the canonical
/// tokenizer so both parsers accept the same names).
pub(crate) fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

/// True for bytes that may continue an XML name.
pub(crate) fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, kind: ErrorKind) -> ParseError {
        ParseError::new(self.pos, kind)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else {
            match self.peek() {
                Some(b) => Err(self.err(ErrorKind::UnexpectedChar(b as char))),
                None => Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips the XML declaration, comments, PIs and whitespace before the
    /// root element. Rejects DOCTYPE.
    fn skip_prolog(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                return Err(self.err(ErrorKind::UnexpectedChar('!')));
            } else {
                return Ok(());
            }
        }
    }

    /// Skips comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self.skip_until("?>").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<()> {
        match self.input[self.pos..].find(end) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => {
                self.pos = self.bytes.len();
                Err(self.err(ErrorKind::UnexpectedEof))
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => {
                self.pos += 1;
            }
            Some(b) => return Err(self.err(ErrorKind::UnexpectedChar(b as char))),
            None => return Err(self.err(ErrorKind::UnexpectedEof)),
        }
        while matches!(self.peek(), Some(b) if is_name_char(b)) {
            self.pos += 1;
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    fn parse_element(&mut self) -> Result<Element> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut el = Element::new(&name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(">")?;
                    return Ok(el);
                }
                Some(b) if is_name_start(b) => {
                    let aname = self.parse_name()?;
                    if el.get_attr(&aname).is_some() {
                        return Err(self.err(ErrorKind::DuplicateAttribute(aname)));
                    }
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    el.set_attr(aname, value);
                }
                Some(b) => return Err(self.err(ErrorKind::UnexpectedChar(b as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }

        // Content.
        let mut text_buf = String::new();
        loop {
            if self.starts_with("</") {
                flush_text(&mut el, &mut text_buf);
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(ErrorKind::MismatchedTag { open: name, close }));
                }
                self.skip_ws();
                self.expect(">")?;
                return Ok(el);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                match self.input[self.pos..].find("]]>") {
                    Some(i) => {
                        text_buf.push_str(&self.input[start..start + i]);
                        self.pos += i + 3;
                    }
                    None => return Err(self.err(ErrorKind::UnexpectedEof)),
                }
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<") {
                flush_text(&mut el, &mut text_buf);
                let child = self.parse_element()?;
                el.push_child(child);
            } else if self.at_end() {
                return Err(self.err(ErrorKind::UnexpectedEof));
            } else {
                self.parse_char_data(&mut text_buf)?;
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            Some(b) => return Err(self.err(ErrorKind::UnexpectedChar(b as char))),
            None => return Err(self.err(ErrorKind::UnexpectedEof)),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'&') => {
                    let c = self.parse_entity()?;
                    out.push_str(&c);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.input[start..self.pos]);
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    /// Consumes character data up to the next `<` or `&`, appending the
    /// decoded text to `buf`; decodes one entity if positioned at `&`.
    fn parse_char_data(&mut self, buf: &mut String) -> Result<()> {
        match self.peek() {
            Some(b'&') => {
                let c = self.parse_entity()?;
                buf.push_str(&c);
            }
            _ => {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' || b == b'&' {
                        break;
                    }
                    self.pos += 1;
                }
                buf.push_str(&self.input[start..self.pos]);
            }
        }
        Ok(())
    }

    /// Parses `&name;`, `&#NN;` or `&#xHH;` (cursor on `&`).
    fn parse_entity(&mut self) -> Result<String> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b != b';') {
            self.pos += 1;
        }
        if self.peek() != Some(b';') {
            return Err(self.err(ErrorKind::UnexpectedEof));
        }
        let body = &self.input[start..self.pos];
        self.pos += 1;
        let decoded = match body {
            "amp" => "&".to_owned(),
            "lt" => "<".to_owned(),
            "gt" => ">".to_owned(),
            "quot" => "\"".to_owned(),
            "apos" => "'".to_owned(),
            _ if body.starts_with('#') => {
                let num = &body[1..];
                let cp = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X'))
                {
                    u32::from_str_radix(hex, 16)
                } else {
                    num.parse::<u32>()
                }
                .map_err(|_| self.err(ErrorKind::BadCharRef(body.to_owned())))?;
                char::from_u32(cp)
                    .ok_or_else(|| self.err(ErrorKind::BadCharRef(body.to_owned())))?
                    .to_string()
            }
            _ => return Err(self.err(ErrorKind::UnknownEntity(body.to_owned()))),
        };
        Ok(decoded)
    }
}

fn flush_text(el: &mut Element, buf: &mut String) {
    if !buf.is_empty() {
        el.push_child(Node::Text(std::mem::take(buf)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize;

    #[test]
    fn basic_element() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name(), "a");
        assert!(e.children().is_empty());
    }

    #[test]
    fn attributes_both_quote_styles() {
        let e = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(e.get_attr("x"), Some("1"));
        assert_eq!(e.get_attr("y"), Some("two"));
    }

    #[test]
    fn nested_and_text() {
        let e = parse("<item><name>golf clubs</name><price>99.95</price></item>").unwrap();
        assert_eq!(e.field("name").as_deref(), Some("golf clubs"));
        assert_eq!(e.field_f64("price"), Some(99.95));
    }

    #[test]
    fn mixed_content_order_preserved() {
        let e = parse("<a>x<b/>y</a>").unwrap();
        assert_eq!(e.children().len(), 3);
        assert_eq!(e.children()[0].as_text(), Some("x"));
        assert!(e.children()[1].as_element().is_some());
        assert_eq!(e.children()[2].as_text(), Some("y"));
    }

    #[test]
    fn entities_decoded() {
        let e = parse("<a b=\"&lt;&amp;&quot;&apos;&gt;\">&#65;&#x42;&amp;</a>").unwrap();
        assert_eq!(e.get_attr("b"), Some("<&\"'>"));
        assert_eq!(e.direct_text(), "AB&");
    }

    #[test]
    fn unknown_entity_rejected() {
        let err = parse("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnknownEntity(_)));
    }

    #[test]
    fn bad_char_ref_rejected() {
        assert!(matches!(
            parse("<a>&#xZZ;</a>").unwrap_err().kind,
            ErrorKind::BadCharRef(_)
        ));
        // Surrogate code point is not a char.
        assert!(matches!(
            parse("<a>&#xD800;</a>").unwrap_err().kind,
            ErrorKind::BadCharRef(_)
        ));
    }

    #[test]
    fn cdata_passes_raw() {
        let e = parse("<a><![CDATA[<not> & parsed]]></a>").unwrap();
        assert_eq!(e.direct_text(), "<not> & parsed");
    }

    #[test]
    fn comments_and_pis_skipped() {
        let e =
            parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/><?pi data?></a>").unwrap();
        assert_eq!(e.child_elements().count(), 1);
    }

    #[test]
    fn mismatched_tag_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn trailing_content_rejected() {
        let err = parse("<a/>junk").unwrap_err();
        assert_eq!(err.kind, ErrorKind::TrailingContent);
    }

    #[test]
    fn trailing_whitespace_and_comment_ok() {
        assert!(parse("<a/>  \n<!-- bye -->  ").is_ok());
    }

    #[test]
    fn doctype_rejected() {
        assert!(parse("<!DOCTYPE a><a/>").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind, ErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn eof_in_tag() {
        assert!(matches!(
            parse("<a").unwrap_err().kind,
            ErrorKind::UnexpectedEof
        ));
        assert!(matches!(
            parse("<a><b>").unwrap_err().kind,
            ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn unicode_names_and_text() {
        let e = parse("<données clé=\"ü\">héllo</données>").unwrap();
        assert_eq!(e.name(), "données");
        assert_eq!(e.get_attr("clé"), Some("ü"));
        assert_eq!(e.direct_text(), "héllo");
    }

    #[test]
    fn roundtrip_smoke() {
        let src = r#"<plan target="129.95.50.105:9020"><select pred="price &lt; 10"><urn name="urn:ForSale:Portland-CDs"/></select></plan>"#;
        let e = parse(src).unwrap();
        let out = serialize(&e);
        let e2 = parse(&out).unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn whitespace_between_attrs_flexible() {
        let e = parse("<a  x = \"1\"\n y='2' />").unwrap();
        assert_eq!(e.get_attr("x"), Some("1"));
        assert_eq!(e.get_attr("y"), Some("2"));
    }
}
