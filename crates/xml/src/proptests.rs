//! Property tests for the XML substrate: round-trip fidelity and size
//! accounting, over arbitrary generated trees.

use proptest::prelude::*;

use crate::node::{Element, Node};
use crate::{parse, serialize, serialize_pretty};

/// Text that exercises escaping but avoids the one thing the model cannot
/// represent: a text node adjacent to another text node (the parser
/// merges them, so `Text("a"), Text("b")` does not round-trip as two
/// nodes). The generator below never produces adjacent text children.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~éü&<>'\"]{1,12}").unwrap()
}

fn arb_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z_][a-zA-Z0-9_.-]{0,8}").unwrap()
}

fn arb_element() -> impl Strategy<Value = Element> {
    let leaf = (
        arb_name(),
        proptest::collection::vec((arb_name(), arb_text()), 0..3),
    )
        .prop_map(|(name, attrs)| {
            let mut e = Element::new(name);
            for (n, v) in attrs {
                e.set_attr(n, v); // set_attr dedups names
            }
            e
        });
    leaf.prop_recursive(3, 24, 4, move |inner| {
        (
            arb_name(),
            proptest::collection::vec((arb_name(), arb_text()), 0..3),
            proptest::collection::vec(
                prop_oneof![
                    inner.prop_map(NodeKind::Element),
                    arb_text().prop_map(NodeKind::Text)
                ],
                0..4,
            ),
        )
            .prop_map(|(name, attrs, kids)| {
                let mut e = Element::new(name);
                for (n, v) in attrs {
                    e.set_attr(n, v);
                }
                let mut last_was_text = false;
                for k in kids {
                    match k {
                        NodeKind::Element(el) => {
                            e.push_child(Node::Element(el));
                            last_was_text = false;
                        }
                        NodeKind::Text(t) => {
                            // Avoid adjacent text nodes (parser merges them).
                            if !last_was_text {
                                e.push_child(Node::Text(t));
                                last_was_text = true;
                            }
                        }
                    }
                }
                e
            })
    })
}

#[derive(Debug, Clone)]
enum NodeKind {
    Element(Element),
    Text(String),
}

/// Trims every text node and drops the ones that become empty; the
/// equivalence pretty-printing preserves.
fn normalize_text(e: &Element) -> Element {
    let mut out = Element::new(e.name());
    for (n, v) in e.attrs() {
        out.set_attr(n.clone(), v.clone());
    }
    for c in e.children() {
        match c {
            Node::Element(el) => out.push_child(Node::Element(normalize_text(el))),
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    out.push_child(Node::Text(t.to_owned()));
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_compact(e in arb_element()) {
        let s = serialize(&e);
        let back = parse(&s).expect("serialized output must reparse");
        prop_assert_eq!(back, e);
    }

    #[test]
    fn serialized_len_is_exact(e in arb_element()) {
        prop_assert_eq!(e.serialized_len(), serialize(&e).len());
    }

    #[test]
    fn pretty_roundtrips_structure(e in arb_element()) {
        // Pretty printing inserts indentation around mixed-content text,
        // so it is lossy for surrounding whitespace by design. The
        // invariant it promises: reparsing and normalizing whitespace in
        // text nodes recovers the whitespace-normalized original.
        let pretty = serialize_pretty(&e);
        let back = parse(&pretty).expect("pretty output must reparse");
        prop_assert_eq!(normalize_text(&back), normalize_text(&e));
    }

    #[test]
    fn subtree_size_positive_and_monotone(e in arb_element()) {
        let size = e.subtree_size();
        prop_assert!(size >= 1);
        for c in e.child_elements() {
            prop_assert!(c.subtree_size() < size);
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~<>&;/\"']{0,64}") {
        let _ = parse(&s); // must not panic
    }

    /// The zero-copy canonical parser agrees node-for-node with the
    /// lenient parser on every serializer output, and its byte-span
    /// guarantee holds: each recorded element span re-serializes to
    /// exactly its input bytes (what envelope splicing relies on).
    #[test]
    fn canonical_parse_agrees_with_lenient(e in arb_element()) {
        let s = serialize(&e);
        let (canon, span) = crate::canon::parse_canonical_spanned(&s, 2)
            .expect("serializer output must canonical-parse");
        let lenient = crate::parse_document(&s).expect("must parse leniently");
        prop_assert_eq!(&canon, &lenient);
        prop_assert_eq!(&canon, &e);
        prop_assert_eq!((span.start, span.end), (0, s.len()));
        for (child, sp) in canon.child_elements().zip(&span.children) {
            prop_assert_eq!(serialize(child), sp.slice(&s));
            for (grand, gsp) in child.child_elements().zip(&sp.children) {
                prop_assert_eq!(serialize(grand), gsp.slice(&s));
            }
        }
    }

    /// Whatever the canonical parser accepts — including inputs we never
    /// generated ourselves — it must agree with the lenient parser and
    /// re-serialize byte-identically. Rejections are fine (they fall
    /// back); disagreements are not.
    #[test]
    fn canonical_never_disagrees_on_arbitrary_input(s in "[ -~<>&;/\"'=]{0,64}") {
        if let Some(e) = crate::canon::parse_canonical(&s) {
            prop_assert_eq!(serialize(&e), s.clone(), "byte-identity");
            let lenient = crate::parse_document(&s).expect("canonical subset of lenient");
            prop_assert_eq!(e, lenient);
        }
    }

    /// `skip_subtree` accepts exactly what `TreeBuilder::build` accepts
    /// — the guarantee that lets the envelope validate its `<original>`
    /// section at parse time and materialize it lazily.
    #[test]
    fn skip_agrees_with_build(s in "[ -~<>&;/\"'=]{0,64}") {
        use crate::canon::{skip_subtree, Token, Tokenizer, TreeBuilder};
        let run = |skip: bool| -> bool {
            let mut tok = Tokenizer::new(&s);
            let Ok(Some(Token::Open(name))) = tok.next_token() else {
                return false;
            };
            let ok = if skip {
                skip_subtree(&mut tok, name).is_ok()
            } else {
                TreeBuilder::new().build(&mut tok, name).is_ok()
            };
            ok && matches!(tok.next_token(), Ok(None))
        };
        prop_assert_eq!(run(true), run(false));
    }
}
