//! Serialization of [`Element`] trees back to XML text.
//!
//! Two modes: [`serialize`] (compact, canonical — what goes on the wire
//! and what [`Element::serialized_len`] measures) and [`serialize_pretty`]
//! (indented, for logs and docs). Both escape `& < >` in text and
//! additionally `" '` in attribute values, exactly mirroring the parser's
//! entity decoding so round-trips are lossless.

use crate::node::{Element, Node};

/// Compact serialization. Empty elements collapse to `<name/>`.
pub fn serialize(el: &Element) -> String {
    let mut out = String::with_capacity(el.serialized_len());
    write_element(el, &mut out);
    out
}

/// Compact serialization appended to an existing buffer — the building
/// block for callers that assemble larger wire messages (e.g. the plan
/// codec) without intermediate strings.
pub fn serialize_into(el: &Element, out: &mut String) {
    write_element(el, out);
}

/// Indented serialization for human consumption. Text nodes are emitted
/// inline (no reflow) so mixed content stays lossless.
pub fn serialize_pretty(el: &Element) -> String {
    let mut out = String::new();
    write_pretty(el, 0, &mut out);
    out.push('\n');
    out
}

fn write_element(el: &Element, out: &mut String) {
    out.push('<');
    out.push_str(el.name());
    for (n, v) in el.attrs() {
        out.push(' ');
        out.push_str(n);
        out.push_str("=\"");
        escape_into(v, true, out);
        out.push('"');
    }
    if el.children().is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in el.children() {
        match c {
            Node::Element(e) => write_element(e, out),
            Node::Text(t) => escape_into(t, false, out),
        }
    }
    out.push_str("</");
    out.push_str(el.name());
    out.push('>');
}

fn write_pretty(el: &Element, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push('<');
    out.push_str(el.name());
    for (n, v) in el.attrs() {
        out.push(' ');
        out.push_str(n);
        out.push_str("=\"");
        escape_into(v, true, out);
        out.push('"');
    }
    if el.children().is_empty() {
        out.push_str("/>");
        return;
    }
    // Pure-text elements print on one line.
    let only_text = el.children().iter().all(|c| matches!(c, Node::Text(_)));
    out.push('>');
    if only_text {
        for c in el.children() {
            if let Node::Text(t) = c {
                escape_into(t, false, out);
            }
        }
    } else {
        for c in el.children() {
            out.push('\n');
            match c {
                Node::Element(e) => write_pretty(e, depth + 1, out),
                Node::Text(t) => {
                    for _ in 0..depth + 1 {
                        out.push_str("  ");
                    }
                    escape_into(t, false, out);
                }
            }
        }
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push_str("</");
    out.push_str(el.name());
    out.push('>');
}

/// Escapes `s` into `out`. With `in_attr`, quotes are escaped too.
pub fn escape_into(s: &str, in_attr: bool, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if in_attr => out.push_str("&quot;"),
            '\'' if in_attr => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_empty_element() {
        assert_eq!(serialize(&Element::new("a")), "<a/>");
    }

    #[test]
    fn attributes_escaped() {
        let e = Element::new("a").attr("k", "x\"y'z&<>");
        let s = serialize(&e);
        assert_eq!(s, r#"<a k="x&quot;y&apos;z&amp;&lt;&gt;"/>"#);
        assert_eq!(parse(&s).unwrap(), e);
    }

    #[test]
    fn text_escaped() {
        let e = Element::new("a").text("1 < 2 & 3 > 2 \"quoted\"");
        let s = serialize(&e);
        assert!(s.contains("&lt;") && s.contains("&amp;") && s.contains("&gt;"));
        // Quotes not escaped in text (parser accepts raw quotes there).
        assert!(s.contains("\"quoted\""));
        assert_eq!(parse(&s).unwrap(), e);
    }

    #[test]
    fn pretty_is_reparseable_after_trim() {
        let e = Element::new("plan")
            .attr("target", "h:1")
            .child(Element::new("select").attr("pred", "price < 10"))
            .child(Element::new("data").text("x & y"));
        let pretty = serialize_pretty(&e);
        let mut back = parse(&pretty).unwrap();
        back.trim_whitespace();
        assert_eq!(back, e);
    }

    #[test]
    fn pretty_single_text_stays_inline() {
        let e = Element::new("name").text("golf clubs");
        assert_eq!(serialize_pretty(&e), "<name>golf clubs</name>\n");
    }

    #[test]
    fn nested_structure() {
        let e = Element::new("r").child(Element::new("a").child(Element::new("b").text("t")));
        assert_eq!(serialize(&e), "<r><a><b>t</b></a></r>");
    }
}
