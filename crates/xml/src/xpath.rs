//! An XPath 1.0 subset, sufficient for the paper's uses of XPath:
//! collection identifiers in index-server entries (`/data[@id='245']`,
//! §3.2) and field extraction inside plan predicates (`item/price`).
//!
//! Supported grammar:
//!
//! ```text
//! path      := '/'? step ('/' step)*
//! step      := ( NAME | '*' | 'text()' ) predicate*
//! predicate := '[' INTEGER ']'                       positional, 1-based
//!            | '[' '@' NAME  op literal ']'          attribute test
//!            | '[' NAME op literal ']'               child-field test
//!            | '[' 'text()' op literal ']'           own-text test
//! op        := '=' | '!=' | '<' | '<=' | '>' | '>='
//! literal   := '…' | "…" | number
//! ```
//!
//! Comparisons are numeric when both sides parse as `f64`, otherwise
//! lexicographic — matching the loose typing of XML data bundles.

use std::borrow::Cow;
use std::fmt;
use std::str::FromStr;

use crate::error::{ErrorKind, ParseError, Result};
use crate::intern::Name;
use crate::node::Element;

/// A parsed XPath expression.
///
/// Parsing *is* the compile pass: step names and predicate field/attr
/// names are interned [`Name`]s, so matching a step against an element
/// is a pointer/ID comparison (see [`crate::intern`]), never a string
/// scan. A parsed `Path` can therefore be cached per query and replayed
/// against thousands of items with no per-node allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Absolute paths (`/a/b`) match the root element against the first
    /// step; relative paths (`a/b`) match the context's children.
    pub absolute: bool,
    /// The location steps, outermost first.
    pub steps: Vec<Step>,
}

/// One location step: a node test plus zero or more predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub test: NodeTest,
    pub predicates: Vec<Predicate>,
}

/// Which nodes a step selects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A child element with this (interned) tag name.
    Name(Name),
    /// Any child element.
    Any,
    /// The concatenated text of the context element.
    Text,
}

/// A filter applied to the nodes a step selected.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `[3]` — keep only the n-th match (1-based).
    Position(usize),
    /// `[@id='245']` — attribute comparison (interned attribute name).
    Attr(Name, Op, String),
    /// `[price < 10]` — first child element with this (interned) name,
    /// deep text.
    Field(Name, Op, String),
    /// `[text() = 'x']` — own text comparison.
    OwnText(Op, String),
}

/// Comparison operator in a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Op {
    /// Applies the operator. Numeric if both sides parse as `f64`,
    /// else lexicographic.
    pub fn apply(self, left: &str, right: &str) -> bool {
        if let (Ok(l), Ok(r)) = (left.trim().parse::<f64>(), right.trim().parse::<f64>()) {
            self.apply_num(l, r)
        } else {
            self.apply_str(left, right)
        }
    }

    /// The numeric arm of [`Op::apply`]. Exposed so compiled predicates
    /// can pre-parse a literal once and skip the per-item re-parse.
    pub fn apply_num(self, l: f64, r: f64) -> bool {
        match self {
            Op::Eq => l == r,
            Op::Ne => l != r,
            Op::Lt => l < r,
            Op::Le => l <= r,
            Op::Gt => l > r,
            Op::Ge => l >= r,
        }
    }

    /// The lexicographic arm of [`Op::apply`].
    pub fn apply_str(self, left: &str, right: &str) -> bool {
        match self {
            Op::Eq => left == right,
            Op::Ne => left != right,
            Op::Lt => left < right,
            Op::Le => left <= right,
            Op::Gt => left > right,
            Op::Ge => left >= right,
        }
    }

    /// The source form of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl Path {
    /// Parses an XPath expression.
    pub fn parse(input: &str) -> Result<Path> {
        PathParser::new(input).parse()
    }

    /// Selects matching elements starting from `root`. Absolute paths
    /// match `root` itself against the first step; relative paths match
    /// `root`'s children. `text()` steps select nothing here (they are
    /// not elements) — use [`Path::select_values`].
    pub fn select_elements<'a>(&self, root: &'a Element) -> Vec<&'a Element> {
        let mut out = Vec::new();
        visit_path(self.absolute, &self.steps, root, &mut |e| {
            out.push(e);
            true
        });
        out
    }

    /// Visits each value the path selects — the deep text of matched
    /// elements, or the direct text when the final step is `text()` —
    /// in document order, as borrowed [`Cow`]s. This is the allocation-
    /// free variant of [`Path::select_values`]: single-text fields (the
    /// overwhelmingly common shape of data bundles) arrive borrowed, so
    /// join-key extraction and predicate evaluation touch no heap.
    pub fn for_each_value<'a>(&self, root: &'a Element, f: &mut impl FnMut(Cow<'a, str>)) {
        self.visit_values(root, &mut |v| {
            f(v);
            true
        });
    }

    /// Visits values until `f` returns `true` (a match); returns whether
    /// any value matched. The short-circuiting form predicates use for
    /// their existential semantics.
    pub fn any_value(&self, root: &Element, f: &mut impl FnMut(&str) -> bool) -> bool {
        !self.visit_values(root, &mut |v| !f(&v))
    }

    /// Core value walk: calls `f` per value, stops (returning `false`)
    /// when `f` does.
    fn visit_values<'a>(
        &self,
        root: &'a Element,
        f: &mut impl FnMut(Cow<'a, str>) -> bool,
    ) -> bool {
        if let Some(last) = self.steps.last() {
            if matches!(last.test, NodeTest::Text) {
                let prefix = &self.steps[..self.steps.len() - 1];
                return visit_path(self.absolute, prefix, root, &mut |e| f(e.direct_text()));
            }
        }
        visit_path(self.absolute, &self.steps, root, &mut |e| f(e.deep_text()))
    }

    /// Selects string values: the deep text of matched elements, or the
    /// text content when the final step is `text()`. Allocates one
    /// `String` per value — prefer [`Path::for_each_value`] on hot
    /// paths.
    pub fn select_values(&self, root: &Element) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each_value(root, &mut |v| out.push(v.into_owned()));
        out
    }

    /// First value selected, trimmed, if any.
    pub fn first_value(&self, root: &Element) -> Option<String> {
        let mut out = None;
        self.visit_values(root, &mut |v| {
            out = Some(v.trim().to_owned());
            false
        });
        out
    }
}

/// Walks the elements `steps` select from `root` in document order,
/// calling `f` per match; `f` returns `false` to stop the walk early.
/// Returns `false` iff the walk was stopped.
fn visit_path<'a>(
    absolute: bool,
    steps: &[Step],
    root: &'a Element,
    f: &mut impl FnMut(&'a Element) -> bool,
) -> bool {
    if absolute {
        let Some((first, rest)) = steps.split_first() else {
            return f(root);
        };
        if matches!(first.test, NodeTest::Text) {
            return true; // text() selects no elements
        }
        if test_element(root, &first.test) && passes_all(root, &first.predicates, 0) {
            return visit_steps(rest, root, f);
        }
        true
    } else {
        visit_steps(steps, root, f)
    }
}

/// Applies `steps` to `ctx`'s children, recursively; an empty step list
/// means `ctx` itself is a match.
fn visit_steps<'a>(
    steps: &[Step],
    ctx: &'a Element,
    f: &mut impl FnMut(&'a Element) -> bool,
) -> bool {
    let Some((step, rest)) = steps.split_first() else {
        return f(ctx);
    };
    if matches!(step.test, NodeTest::Text) {
        return true; // text() mid-path selects no elements
    }
    let mut idx = 0usize;
    for child in ctx.child_elements() {
        if test_element(child, &step.test) {
            idx += 1;
            if passes_all(child, &step.predicates, idx) && !visit_steps(rest, child, f) {
                return false;
            }
        }
    }
    true
}

fn test_element(e: &Element, test: &NodeTest) -> bool {
    match test {
        // Interned names: usually a single pointer compare.
        NodeTest::Name(n) => e.interned_name() == n,
        NodeTest::Any => true,
        NodeTest::Text => false,
    }
}

fn passes_all(e: &Element, preds: &[Predicate], position: usize) -> bool {
    preds.iter().all(|p| passes(e, p, position))
}

fn passes(e: &Element, pred: &Predicate, position: usize) -> bool {
    match pred {
        Predicate::Position(n) => position == *n,
        Predicate::Attr(name, op, lit) => match e.attrs().iter().find(|(n, _)| n == name) {
            Some((_, v)) => op.apply(v, lit),
            None => false,
        },
        Predicate::Field(name, op, lit) => {
            match e.child_elements().find(|c| c.interned_name() == name) {
                Some(c) => op.apply(c.deep_text().trim(), lit),
                None => false,
            }
        }
        Predicate::OwnText(op, lit) => op.apply(e.deep_text().trim(), lit),
    }
}

impl FromStr for Path {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Path> {
        Path::parse(s)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            write!(f, "/")?;
        }
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            match &step.test {
                NodeTest::Name(n) => write!(f, "{n}")?,
                NodeTest::Any => write!(f, "*")?,
                NodeTest::Text => write!(f, "text()")?,
            }
            for p in &step.predicates {
                match p {
                    Predicate::Position(n) => write!(f, "[{n}]")?,
                    Predicate::Attr(a, op, l) => write!(f, "[@{a}{op}'{l}']")?,
                    Predicate::Field(n, op, l) => write!(f, "[{n}{op}'{l}']")?,
                    Predicate::OwnText(op, l) => write!(f, "[text(){op}'{l}']")?,
                }
            }
        }
        Ok(())
    }
}

struct PathParser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> PathParser<'a> {
    fn new(input: &'a str) -> Self {
        PathParser { input, pos: 0 }
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError::new(self.pos, ErrorKind::BadPath(msg.to_owned()))
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn parse(mut self) -> Result<Path> {
        self.skip_ws();
        let absolute = self.eat("/");
        let mut steps = Vec::new();
        if absolute && self.rest().trim().is_empty() {
            // "/" alone selects the root.
            return Ok(Path { absolute, steps });
        }
        loop {
            steps.push(self.parse_step()?);
            self.skip_ws();
            if !self.eat("/") {
                break;
            }
        }
        self.skip_ws();
        if !self.rest().is_empty() {
            return Err(self.err("trailing input"));
        }
        if steps.is_empty() {
            return Err(self.err("empty path"));
        }
        Ok(Path { absolute, steps })
    }

    fn parse_step(&mut self) -> Result<Step> {
        self.skip_ws();
        let test = if self.eat("text()") {
            NodeTest::Text
        } else if self.eat("*") {
            NodeTest::Any
        } else {
            let name = self.parse_name()?;
            NodeTest::Name(Name::new(name))
        };
        let mut predicates = Vec::new();
        loop {
            self.skip_ws();
            if !self.eat("[") {
                break;
            }
            predicates.push(self.parse_predicate()?);
            self.skip_ws();
            if !self.eat("]") {
                return Err(self.err("expected ]"));
            }
        }
        Ok(Step { test, predicates })
    }

    fn parse_name(&mut self) -> Result<&'a str> {
        let start = self.pos;
        match self.rest().chars().next() {
            Some(c) if c.is_alphabetic() || c == '_' => {}
            _ => return Err(self.err("expected name")),
        }
        let mut end = self.rest().len();
        for (i, c) in self.rest().char_indices().skip(1) {
            if !(c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')) {
                end = i;
                break;
            }
        }
        self.pos = start + end;
        Ok(&self.input[start..self.pos])
    }

    fn parse_predicate(&mut self) -> Result<Predicate> {
        self.skip_ws();
        // Positional: [3]
        if self.rest().starts_with(|c: char| c.is_ascii_digit()) {
            let start = self.pos;
            while self.rest().starts_with(|c: char| c.is_ascii_digit()) {
                self.pos += 1;
            }
            let n: usize = self.input[start..self.pos]
                .parse()
                .map_err(|_| self.err("bad position"))?;
            if n == 0 {
                return Err(self.err("positions are 1-based"));
            }
            return Ok(Predicate::Position(n));
        }
        if self.eat("@") {
            let name = self.parse_name()?;
            let op = self.parse_op()?;
            let lit = self.parse_literal()?;
            return Ok(Predicate::Attr(Name::new(name), op, lit));
        }
        if self.eat("text()") {
            let op = self.parse_op()?;
            let lit = self.parse_literal()?;
            return Ok(Predicate::OwnText(op, lit));
        }
        let name = self.parse_name()?;
        let op = self.parse_op()?;
        let lit = self.parse_literal()?;
        Ok(Predicate::Field(Name::new(name), op, lit))
    }

    fn parse_op(&mut self) -> Result<Op> {
        self.skip_ws();
        let op = if self.eat("!=") {
            Op::Ne
        } else if self.eat("<=") {
            Op::Le
        } else if self.eat(">=") {
            Op::Ge
        } else if self.eat("=") {
            Op::Eq
        } else if self.eat("<") {
            Op::Lt
        } else if self.eat(">") {
            Op::Gt
        } else {
            return Err(self.err("expected comparison operator"));
        };
        Ok(op)
    }

    fn parse_literal(&mut self) -> Result<String> {
        self.skip_ws();
        for quote in ['\'', '"'] {
            if self.eat(&quote.to_string()) {
                let start = self.pos;
                match self.rest().find(quote) {
                    Some(i) => {
                        let lit = self.input[start..start + i].to_owned();
                        self.pos = start + i + 1;
                        return Ok(lit);
                    }
                    None => return Err(self.err("unterminated string literal")),
                }
            }
        }
        // Bare number.
        let start = self.pos;
        while self
            .rest()
            .starts_with(|c: char| c.is_ascii_digit() || c == '.' || c == '-' || c == '+')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected literal"));
        }
        Ok(self.input[start..self.pos].to_owned())
    }
}

/// Convenience: selects values of `path` evaluated against `root`,
/// parsing the path on the fly. Panics on a malformed path — intended for
/// statically known paths in examples and tests.
pub fn values(root: &Element, path: &str) -> Vec<String> {
    Path::parse(path)
        .expect("malformed XPath literal")
        .select_values(root)
}

/// Walks the subtree depth-first yielding every element (including
/// `root`). Used by scans that ignore structure.
pub fn descendants(root: &Element) -> Vec<&Element> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(e) = stack.pop() {
        out.push(e);
        // Push in reverse so traversal is document-ordered.
        let kids: Vec<&Element> = e.child_elements().collect();
        for k in kids.into_iter().rev() {
            stack.push(k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn doc() -> Element {
        parse(concat!(
            "<data id=\"245\">",
            "<item><name>golf clubs</name><price>99.95</price></item>",
            "<item><name>armchair</name><price>40</price></item>",
            "<item><name>CD</name><price>8.5</price></item>",
            "</data>"
        ))
        .unwrap()
    }

    #[test]
    fn absolute_root_match() {
        let d = doc();
        let p = Path::parse("/data").unwrap();
        assert_eq!(p.select_elements(&d).len(), 1);
        let p2 = Path::parse("/other").unwrap();
        assert!(p2.select_elements(&d).is_empty());
    }

    #[test]
    fn absolute_with_attr_predicate() {
        let d = doc();
        assert_eq!(
            Path::parse("/data[@id='245']")
                .unwrap()
                .select_elements(&d)
                .len(),
            1
        );
        assert!(Path::parse("/data[@id='999']")
            .unwrap()
            .select_elements(&d)
            .is_empty());
    }

    #[test]
    fn relative_descent() {
        let d = doc();
        let items = Path::parse("item").unwrap().select_elements(&d);
        assert_eq!(items.len(), 3);
        let names = Path::parse("item/name").unwrap().select_values(&d);
        assert_eq!(names, vec!["golf clubs", "armchair", "CD"]);
    }

    #[test]
    fn field_predicate_numeric() {
        let d = doc();
        let cheap = Path::parse("item[price < 10]").unwrap().select_elements(&d);
        assert_eq!(cheap.len(), 1);
        assert_eq!(cheap[0].field("name").as_deref(), Some("CD"));
    }

    #[test]
    fn field_predicate_string() {
        let d = doc();
        let hit = Path::parse("item[name = 'armchair']")
            .unwrap()
            .select_elements(&d);
        assert_eq!(hit.len(), 1);
    }

    #[test]
    fn position_predicate() {
        let d = doc();
        let second = Path::parse("item[2]/name").unwrap().select_values(&d);
        assert_eq!(second, vec!["armchair"]);
    }

    #[test]
    fn wildcard_step() {
        let d = doc();
        assert_eq!(Path::parse("*").unwrap().select_elements(&d).len(), 3);
        assert_eq!(Path::parse("*/name").unwrap().select_values(&d).len(), 3);
    }

    #[test]
    fn text_step() {
        let d = doc();
        let texts = Path::parse("item/name/text()").unwrap().select_values(&d);
        assert_eq!(texts, vec!["golf clubs", "armchair", "CD"]);
    }

    #[test]
    fn first_value_trims() {
        let e = parse("<a><b>  x  </b></a>").unwrap();
        assert_eq!(
            Path::parse("b").unwrap().first_value(&e).as_deref(),
            Some("x")
        );
    }

    #[test]
    fn own_text_predicate() {
        let d = doc();
        let hits = Path::parse("item/name[text() = 'CD']")
            .unwrap()
            .select_elements(&d);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn display_roundtrip() {
        for src in [
            "/data[@id='245']",
            "item[price<'10']/name",
            "a/b/c",
            "*[2]",
            "item/text()",
        ] {
            let p = Path::parse(src).unwrap();
            let shown = p.to_string();
            let p2 = Path::parse(&shown).unwrap();
            assert_eq!(p, p2, "{src} -> {shown}");
        }
    }

    #[test]
    fn op_numeric_vs_string() {
        assert!(Op::Lt.apply("9", "10"));
        assert!(!Op::Lt.apply("a9", "a10")); // lexicographic
        assert!(Op::Eq.apply("1.0", "1"));
        assert!(Op::Ne.apply("x", "y"));
        assert!(Op::Ge.apply("10", "10"));
    }

    #[test]
    fn malformed_paths_rejected() {
        for bad in ["", "/", "a//b", "a[", "a[@]", "a[price 10]", "a]"] {
            // "/" alone is allowed (root), so skip it.
            if bad == "/" {
                assert!(Path::parse(bad).is_ok());
                continue;
            }
            assert!(Path::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn descendants_document_order() {
        let d = doc();
        let all = descendants(&d);
        assert_eq!(all.len(), 1 + 3 + 6);
        assert_eq!(all[0].name(), "data");
        assert_eq!(all[1].name(), "item");
        assert_eq!(all[2].name(), "name");
    }

    #[test]
    fn zero_position_rejected() {
        assert!(Path::parse("a[0]").is_err());
    }
}
