//! The mutant-query evaluation of Figures 3–4, traced step by step:
//! the plan starts at the client with verbatim favourite songs, binds
//! `urn:CD:TrackListings` and `urn:ForSale:Portland-CDs` at a
//! meta-index server, reduces at the track-listing service and each
//! seller in turn, and arrives back fully evaluated.
//!
//! Run with: `cargo run --example cd_search`

use mqp::workloads::cd::{build, CdConfig};

fn main() {
    let mut world = build(CdConfig {
        albums: 30,
        tracks_per_album: 6,
        favorites: 4,
        sellers: 2,
        stock_fraction: 0.6,
        seed: 7,
    });
    println!("Figure 3 plan:\n{}\n", world.plan);
    println!(
        "favourite songs appear on: {}\n",
        world.favorite_albums.join(", ")
    );

    let qid = world.harness.submit(world.client, world.plan.clone());
    world.harness.run(1_000_000);

    for q in world.harness.completed() {
        assert_eq!(q.qid, qid);
        match &q.failure {
            None => {
                println!(
                    "completed: {} matching CDs, {} hops, {} MQP bytes, {:.1} ms\n",
                    q.items.len(),
                    q.hops,
                    q.mqp_bytes,
                    q.latency_us as f64 / 1000.0
                );
                for t in &q.items {
                    let album = mqp::xml::xpath::values(t, "item/title")
                        .first()
                        .cloned()
                        .unwrap_or_default();
                    let price = mqp::xml::xpath::values(t, "item/price")
                        .first()
                        .cloned()
                        .unwrap_or_default();
                    let song = mqp::xml::xpath::values(t, "tuple/song/title")
                        .first()
                        .cloned()
                        .unwrap_or_default();
                    println!("  {album} (${price}) — has favourite {song}");
                }
            }
            Some(reason) => println!("failed: {reason}"),
        }
    }
}
