//! The P2P garage sale (paper §2): a full world with meta-index, index,
//! and seller peers, running a batch of interest-area queries and
//! reporting routing efficiency — including the §3.4 route-cache
//! warm-up.
//!
//! Run with: `cargo run --example garage_sale`

use rand::rngs::StdRng;
use rand::SeedableRng;

use mqp::workloads::garage::{build, random_query, GarageConfig};

fn main() {
    let config = GarageConfig {
        sellers: 40,
        items_per_seller: 12,
        index_servers: 8,
        meta_servers: 2,
        seed: 2003,
    };
    println!(
        "garage-sale world: {} sellers x {} items, {} index, {} meta servers\n",
        config.sellers, config.items_per_seller, config.index_servers, config.meta_servers
    );
    let mut world = build(config);
    world.harness.cache_learning = true;

    let queries = 30;
    let mut total_items = 0usize;
    let mut ok = 0usize;
    let mut empty = 0usize;
    let mut hops_cold = Vec::new();
    let mut hops_warm = Vec::new();

    for round in 0..2 {
        // Same query mix both rounds; the second benefits from caches.
        let mut round_rng = StdRng::seed_from_u64(4242);
        for _ in 0..queries {
            let plan = random_query(&mut round_rng, Some(100.0));
            world.harness.submit(world.client, plan);
            world.harness.run(1_000_000);
        }
        for q in world.harness.take_completed() {
            match &q.failure {
                None => {
                    ok += 1;
                    total_items += q.items.len();
                    if round == 0 {
                        hops_cold.push(q.hops);
                    } else {
                        hops_warm.push(q.hops);
                    }
                }
                Some(_) => empty += 1,
            }
        }
    }

    let mean = |v: &[u64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64
        }
    };
    println!("queries: {ok} completed, {empty} found no covering server");
    println!("items returned: {total_items}");
    println!("mean hops, cold caches : {:.2}", mean(&hops_cold));
    println!("mean hops, warm caches : {:.2}", mean(&hops_warm));
    let stats = world.harness.net.stats();
    println!(
        "\nnetwork totals: {} messages, {} bytes, receive imbalance {:.2}x",
        stats.messages_sent,
        stats.bytes_sent,
        stats.receive_imbalance()
    );
}
