//! "Of Mice and Men" (paper Figure 1): routing a mammalian
//! cardiac-muscle query across gene-expression repositories described
//! by Organism × CellType interest areas.
//!
//! Run with: `cargo run --example gene_expression`

use mqp::workloads::gene::{build, cardiac_mammal_area, cardiac_query, group_areas};

fn main() {
    println!("Figure 1 interest areas:");
    for (name, area) in group_areas() {
        println!("  {name:<12} {area}");
    }
    let q = cardiac_mammal_area();
    println!("\nquery area: {q}\n");
    for (name, area) in group_areas() {
        println!(
            "  {name:<12} overlaps query: {}",
            if area.overlaps(&q) {
                "yes — route here"
            } else {
                "no — skip"
            }
        );
    }

    let (mut harness, client) = build(8);
    let qid = harness.submit(client, cardiac_query());
    harness.run(100_000);

    println!();
    for q in harness.completed() {
        assert_eq!(q.qid, qid);
        match &q.failure {
            None => {
                let mut by_lab = std::collections::BTreeMap::<String, usize>::new();
                for item in &q.items {
                    if let Some(lab) = item.field("lab") {
                        *by_lab.entry(lab).or_default() += 1;
                    }
                }
                println!(
                    "query completed in {} hops, {:.1} ms, {} records:",
                    q.hops,
                    q.latency_us as f64 / 1000.0,
                    q.items.len()
                );
                for (lab, n) in &by_lab {
                    println!("  {lab:<12} {n} expression records");
                }
                assert!(!by_lab.contains_key("fly-lab"), "fly lab must be skipped");
            }
            Some(reason) => println!("query failed: {reason}"),
        }
    }
    let stats = harness.net.stats();
    println!(
        "\nnetwork: {} messages, {} bytes — the fly lab received {} of them",
        stats.messages_sent,
        stats.bytes_sent,
        stats.per_node[2].1, // node 2 = fly-lab
    );
}
