//! The law-enforcement scenario of §5.2: an MQP obtains an answer no
//! single agency would disclose wholesale. The IRS is willing to pass
//! (employee, charity) pairs to the State Department, which joins them
//! against its front-organization list and returns only the names —
//! neither agency divulges its full dataset to the requesting agency.
//!
//! Run with: `cargo run --example irs_privacy`

use mqp::algebra::plan::{JoinCond, Plan};
use mqp::namespace::{Hierarchy, Namespace};
use mqp::net::Topology;
use mqp::peer::{Peer, SimHarness};
use mqp::xml::Element;

fn main() {
    let ns = Namespace::new([Hierarchy::new("Agency").with(["IRS", "State"])]);

    // The IRS: itemized deductions over $5000 by employees of AcmeCorp.
    let mut irs = Peer::new("irs", ns.clone()).with_default_route("state");
    irs.add_collection(
        "deductions",
        mqp::namespace::InterestArea::parse(&[&["IRS"]]),
        [
            deduction("alice", "AcmeCorp", "Sunrise Fund", 9000.0),
            deduction("bob", "AcmeCorp", "Red Cross", 6000.0),
            deduction("carol", "AcmeCorp", "Sunrise Fund", 2000.0),
            deduction("dave", "OtherCo", "Sunrise Fund", 8000.0),
        ],
    );
    irs.publish_urn("urn:IRS:Deductions", "deductions");

    // The State Department: suspected front organizations.
    let mut state = Peer::new("state", ns.clone());
    state.add_collection(
        "fronts",
        mqp::namespace::InterestArea::parse(&[&["State"]]),
        [front("Sunrise Fund"), front("Moonbeam Trust")],
    );
    state.publish_urn("urn:State:FrontOrgs", "fronts");

    // The law-enforcement agency submits the MQP. It knows only the
    // abstract resource names.
    let agency = Peer::new("agency", ns.clone()).with_default_route("irs");

    // π(name)( σ(employer=AcmeCorp ∧ amount>5000)(Deductions)
    //          ⋈ charity=org FrontOrgs )
    let plan = Plan::project(
        ["deduction"],
        Plan::join(
            JoinCond::on("charity", "name"),
            Plan::select(
                "employer = 'AcmeCorp' and amount > 5000",
                Plan::urn("urn:IRS:Deductions"),
            ),
            Plan::urn("urn:State:FrontOrgs"),
        ),
    );
    println!("the agency's MQP:\n{plan}\n");

    let mut harness = SimHarness::new(Topology::uniform(3, 20_000), vec![agency, irs, state]);
    let qid = harness.submit(0, plan);
    harness.run(10_000);

    for q in harness.completed() {
        assert_eq!(q.qid, qid);
        match &q.failure {
            None => {
                println!("names returned to the agency:");
                for t in &q.items {
                    let who = mqp::xml::xpath::values(t, "deduction/employee")
                        .first()
                        .cloned()
                        .unwrap_or_default();
                    println!("  - {who}");
                }
                // Only Alice: Bob's charity is legitimate, Carol's gift
                // is under $5000, Dave works elsewhere.
                assert_eq!(q.items.len(), 1);
                println!(
                    "\nMQP path (provenance would show): agency -> IRS (bind + filter) \
                     -> State (join + project) -> agency"
                );
                println!(
                    "hops: {}, bytes shipped: {} — the IRS never saw the front-org \
                     list; the agency never saw either full dataset.",
                    q.hops, q.mqp_bytes
                );
            }
            Some(reason) => println!("failed: {reason}"),
        }
    }
}

fn deduction(employee: &str, employer: &str, charity: &str, amount: f64) -> Element {
    Element::new("deduction")
        .child(Element::new("employee").text(employee))
        .child(Element::new("employer").text(employer))
        .child(Element::new("charity").text(charity))
        .child(Element::new("amount").text(format!("{amount}")))
}

fn front(name: &str) -> Element {
    Element::new("org").child(Element::new("name").text(name))
}
