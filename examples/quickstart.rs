//! Quickstart: build a tiny P2P world, publish data, and run a mutant
//! query plan end to end — the garage-sale "armchairs in Portland"
//! query of §3.1.
//!
//! Run with: `cargo run --example quickstart`

use mqp::algebra::plan::{Plan, UrnRef};
use mqp::namespace::{Cell, Hierarchy, InterestArea, Namespace, Urn};
use mqp::net::Topology;
use mqp::peer::{Peer, SimHarness};
use mqp::xml::Element;

fn main() {
    // 1. A multi-hierarchic namespace: Location × Merchandise (§3.1).
    let ns = Namespace::new([
        Hierarchy::new("Location").with(["USA/OR/Portland", "USA/WA/Vancouver"]),
        Hierarchy::new("Merchandise").with(["Furniture/Chairs", "Furniture/Tables"]),
    ]);

    // 2. Peers: a client, a meta-index server, and two sellers with
    //    interest areas (Figure 5's areas (a) and (b)).
    let client = Peer::new("client", ns.clone()).with_default_route("meta");
    let mut meta = Peer::new("meta", ns.clone());

    let mut vancouver = Peer::new("vancouver-shop", ns.clone());
    vancouver.add_collection(
        "furniture",
        InterestArea::of(Cell::parse(["USA/WA/Vancouver", "Furniture"])),
        [
            item("oak table", 120.0, "Furniture/Tables"),
            item("rocking chair", 45.0, "Furniture/Chairs"),
        ],
    );

    let mut portland = Peer::new("portland-shop", ns.clone());
    portland.add_collection(
        "everything",
        InterestArea::of(Cell::parse(["USA/OR/Portland", "*"])),
        [
            item("armchair", 30.0, "Furniture/Chairs"),
            item("recliner", 80.0, "Furniture/Chairs"),
            item("lava lamp", 12.0, "Electronics/Lighting"),
        ],
    );

    // 3. Registration (§3.3): sellers announce their areas to the
    //    meta-index server.
    meta.catalog_mut().register(vancouver.base_entry());
    meta.catalog_mut().register(portland.base_entry());

    // 4. Wire everything to a simulated network: 1 ms LAN links inside
    //    a cluster, 40 ms across.
    let mut harness = SimHarness::new(
        Topology::clustered(4, 2, 1_000, 40_000),
        vec![client, meta, vancouver, portland],
    );

    // 5. The query: second-hand chairs in Portland under $50 (§3.1's
    //    "[USA/OR/Portland, Furniture/Chairs]" interest area).
    let area = InterestArea::of(Cell::parse(["USA/OR/Portland", "Furniture/Chairs"]));
    // The interest area routes the plan to overlapping *collections*;
    // the predicate then filters *items* — the Portland shop's
    // [Portland, *] collection also holds non-furniture.
    let plan = Plan::select(
        "price < 50 and category = 'Furniture/Chairs'",
        Plan::Urn(UrnRef::new(Urn::area(area))),
    );
    println!("query plan:\n{plan}\n");

    let qid = harness.submit(0, plan);
    harness.run(10_000);

    // 6. Results.
    for q in harness.completed() {
        assert_eq!(q.qid, qid);
        match &q.failure {
            None => {
                println!(
                    "query {} completed: {} item(s), {} hops, {} MQP bytes, {:.1} ms",
                    q.qid,
                    q.items.len(),
                    q.hops,
                    q.mqp_bytes,
                    q.latency_us as f64 / 1000.0
                );
                for i in &q.items {
                    println!("  - {}", mqp::xml::serialize(i));
                }
            }
            Some(reason) => println!("query {} failed: {reason}", q.qid),
        }
    }
    let stats = harness.net.stats();
    println!(
        "\nnetwork: {} messages, {} bytes",
        stats.messages_sent, stats.bytes_sent
    );
}

fn item(name: &str, price: f64, category: &str) -> Element {
    Element::new("item")
        .child(Element::new("name").text(name))
        .child(Element::new("category").text(category))
        .child(Element::new("price").text(format!("{price:.2}")))
}
