//! # mqp — Mutant Query Plans and distributed catalogs for P2P systems
//!
//! A reproduction of *"Distributed Query Processing and Catalogs for
//! Peer-to-Peer Systems"* (Papadimos, Maier, Tufte — CIDR 2003) as a
//! Rust workspace. This facade crate re-exports the public API of every
//! component crate; see the README for the architecture overview and
//! DESIGN.md for the per-experiment index.
//!
//! Quick tour (see `examples/quickstart.rs` for the runnable version):
//!
//! ```
//! use mqp::algebra::plan::Plan;
//! use mqp::core::Mqp;
//!
//! // Build the Figure-3 style plan: select cheap CDs from an abstract
//! // resource, display the answer back to the client.
//! let plan = Plan::display(
//!     "client#0",
//!     Plan::select("price < 10", Plan::urn("urn:ForSale:Portland-CDs")),
//! );
//!
//! // Serialize it as a travelling mutant query plan…
//! let wire = Mqp::new(plan).to_wire();
//! assert!(wire.starts_with("<mqp>"));
//!
//! // …and any peer can parse it back and keep mutating it.
//! let back = Mqp::from_wire(&wire).unwrap();
//! assert_eq!(back.plan().urns().len(), 1);
//! ```

pub use mqp_algebra as algebra;
pub use mqp_baselines as baselines;
pub use mqp_catalog as catalog;
pub use mqp_core as core;
pub use mqp_engine as engine;
pub use mqp_lang as lang;
pub use mqp_namespace as namespace;
pub use mqp_net as net;
pub use mqp_peer as peer;
pub use mqp_workloads as workloads;
pub use mqp_xml as xml;
