//! Integration tests spanning crates: full paper scenarios running over
//! the simulated network.

use mqp::algebra::plan::{JoinCond, OrAlt, Plan, UrnRef};
use mqp::catalog::{CatalogEntry, ServerId};
use mqp::core::provenance::{unaccounted_sources, verification_query};
use mqp::core::{Action, Mqp, Policy};
use mqp::namespace::{Cell, Hierarchy, InterestArea, Namespace, Urn};
use mqp::net::Topology;
use mqp::peer::{Peer, SimHarness};
use mqp::xml::Element;

fn ns() -> Namespace {
    Namespace::new([
        Hierarchy::new("Location").with(["USA/OR/Portland", "USA/OR/Eugene"]),
        Hierarchy::new("Merchandise").with(["Music/CDs", "SportingGoods/GolfClubs"]),
    ])
}

fn pdx_cds() -> InterestArea {
    InterestArea::of(Cell::parse(["USA/OR/Portland", "Music/CDs"]))
}

fn cd(title: &str, price: f64) -> Element {
    Element::new("item")
        .child(Element::new("title").text(title))
        .child(Element::new("price").text(format!("{price}")))
}

/// §4.3 end to end: a replica R carries S's data up to 30 minutes
/// stale. A currency-preferring client visits both; a latency-
/// preferring client visits only R and the answer is flagged stale.
#[test]
fn currency_vs_latency_tradeoff() {
    let run = |policy: Policy| {
        let client = Peer::new("client", ns())
            .with_default_route("meta")
            .with_policy(policy);
        let mut meta = Peer::new("meta", ns()).with_policy(policy);
        let mut r = Peer::new("R", ns()).with_policy(policy);
        r.add_collection("cds", pdx_cds(), [cd("at-r", 5.0), cd("from-s", 6.0)]);
        let mut s = Peer::new("S", ns()).with_policy(policy);
        s.add_collection("cds", pdx_cds(), [cd("from-s", 6.0), cd("new-at-s", 7.0)]);
        meta.catalog_mut().register(r.base_entry());
        meta.catalog_mut().register(s.base_entry());
        meta.catalog_mut().add_statement(
            "base[USA.OR.Portland, Music.CDs]@R >= base[USA.OR.Portland, Music.CDs]@S{30}"
                .parse()
                .unwrap(),
        );
        let mut h = SimHarness::new(Topology::uniform(4, 10_000), vec![client, meta, r, s]);
        let plan = Plan::Urn(UrnRef::new(Urn::area(pdx_cds())));
        h.submit(0, plan);
        h.run(10_000);
        h.take_completed().pop().unwrap()
    };

    let current = run(Policy::current());
    let fast = run(Policy::fast());
    assert!(current.failure.is_none() && fast.failure.is_none());
    // Current visits both servers: sees S's brand-new item.
    let titles = |q: &mqp::peer::QueryOutcome| {
        let mut t: Vec<String> = q.items.iter().filter_map(|i| i.field("title")).collect();
        t.sort();
        t.dedup();
        t
    };
    assert!(titles(&current).contains(&"new-at-s".to_owned()));
    // Fast takes the single-site alternative (R only): fewer hops, and
    // misses what R has not yet replicated.
    assert!(
        fast.hops < current.hops,
        "{} !< {}",
        fast.hops,
        current.hops
    );
    assert!(!titles(&fast).contains(&"new-at-s".to_owned()));
}

/// §4.2 Example 1 end to end: with an equality statement, the binding
/// lets the plan visit a single server instead of two.
#[test]
fn intensional_statement_cuts_fanout() {
    let run = |with_statement: bool| {
        let client = Peer::new("client", ns())
            .with_default_route("meta")
            .with_policy(Policy::fast());
        let mut meta = Peer::new("meta", ns()).with_policy(Policy::fast());
        let mut r = Peer::new("R", ns());
        r.add_collection(
            "golf",
            InterestArea::of(Cell::parse(["USA/OR/Portland", "SportingGoods/GolfClubs"])),
            [cd("putter", 30.0)],
        );
        let mut s = Peer::new("S", ns());
        s.add_collection(
            "golf",
            InterestArea::of(Cell::parse(["USA/OR/Portland", "SportingGoods/GolfClubs"])),
            [cd("putter", 30.0)],
        );
        meta.catalog_mut().register(r.base_entry());
        meta.catalog_mut().register(s.base_entry());
        if with_statement {
            meta.catalog_mut().add_statement(
                "base[USA.OR.Portland, SportingGoods]@R = \
                 base[USA.OR.Portland, SportingGoods]@S"
                    .parse()
                    .unwrap(),
            );
        }
        let mut h = SimHarness::new(Topology::uniform(4, 10_000), vec![client, meta, r, s]);
        let area = InterestArea::of(Cell::parse(["USA/OR/Portland", "SportingGoods/GolfClubs"]));
        h.submit(0, Plan::Urn(UrnRef::new(Urn::area(area))));
        h.run(10_000);
        h.take_completed().pop().unwrap()
    };
    let without = run(false);
    let with = run(true);
    assert!(without.failure.is_none() && with.failure.is_none());
    assert!(
        with.hops < without.hops,
        "{} !< {}",
        with.hops,
        without.hops
    );
    // Either way the answer is non-empty (R replicates S exactly).
    assert!(!with.items.is_empty());
}

/// §5.1 spoofing scenario end to end: a provenance audit of the
/// original plan catches the bypassed source, and the verification
/// query confirms the spoof.
#[test]
fn provenance_audit_detects_spoofing() {
    // Honest run first.
    let original = Plan::union([Plan::url("mqp://S/"), Plan::url("mqp://T/")]);
    let mut honest = Mqp::new(Plan::display("client#0", original.clone()));

    let mut s = Peer::new("S", ns());
    s.add_collection("a", pdx_cds(), [cd("s-item", 1.0)]);
    let mut t = Peer::new("T", ns());
    t.add_collection("b", pdx_cds(), [cd("t-item", 2.0)]);

    // S processes, then T.
    use mqp::core::Outcome;
    match s.process(&mut honest) {
        Outcome::Forward { to } => assert_eq!(to, ServerId::new("T")),
        other => panic!("expected forward, got {other:?}"),
    }
    match t.process(&mut honest) {
        Outcome::Complete { items, .. } => assert_eq!(items.len(), 2),
        other => panic!("expected complete, got {other:?}"),
    }
    assert!(unaccounted_sources(honest.original().unwrap(), honest.provenance()).is_empty());

    // Spoofed run: S binds T's source to empty data without visiting T.
    let mut spoofed = Mqp::new(Plan::display("client#0", original));
    // Malicious S: replace T's URL with empty data, evaluate only its own.
    let t_path = spoofed
        .plan()
        .find_all(&|p| matches!(p, Plan::Url(u) if u.href == "mqp://T/"))
        .pop()
        .unwrap();
    spoofed.plan_mut().replace(&t_path, Plan::data([])).unwrap();
    match s.process(&mut spoofed) {
        Outcome::Complete { items, .. } => assert_eq!(items.len(), 1), // T's data gone
        other => panic!("expected complete, got {other:?}"),
    }
    let missing = unaccounted_sources(spoofed.original().unwrap(), spoofed.provenance());
    assert_eq!(missing, vec!["mqp://T/".to_owned()]);

    // The verification query against T (count of the spoofed source)
    // reveals T actually holds data.
    let vq = verification_query(Plan::url("mqp://T/"), "auditor#0");
    let mut vmqp = Mqp::new(vq);
    match t.process(&mut vmqp) {
        Outcome::Complete { items, .. } => {
            assert_eq!(items[0].name(), "count");
            assert_eq!(items[0].deep_text(), "1"); // not empty ⇒ spoof proven
        }
        other => panic!("expected complete, got {other:?}"),
    }
}

/// Index-server continuation: a binding that addresses an index server
/// (level=index) routes the plan there, and the index server's own
/// catalog finishes resolution — §4.2 Example 2's "routed to R (and to
/// S, T and U as needed)".
#[test]
fn index_level_binding_continues_resolution() {
    let client = Peer::new("client", ns()).with_default_route("meta");
    let mut meta = Peer::new("meta", ns());
    // The meta server knows only the index server's coverage statement.
    meta.catalog_mut()
        .register(CatalogEntry::index("idx", pdx_cds()).authoritative());
    let mut idx = Peer::new("idx", ns());
    let mut s = Peer::new("S", ns());
    s.add_collection("cds", pdx_cds(), [cd("x", 3.0)]);
    idx.catalog_mut().register(s.base_entry());
    let mut h = SimHarness::new(Topology::uniform(4, 5_000), vec![client, meta, idx, s]);
    h.submit(0, Plan::Urn(UrnRef::new(Urn::area(pdx_cds()))));
    h.run(10_000);
    let q = h.take_completed().pop().unwrap();
    assert!(q.failure.is_none(), "{:?}", q.failure);
    assert_eq!(q.items.len(), 1);
}

/// An MQP whose envelope round-trips through every hop: wire form in,
/// wire form out, provenance accumulating.
#[test]
fn envelope_survives_multi_hop_serialization() {
    let mut s1 = Peer::new("s1", ns());
    s1.add_collection("cds", pdx_cds(), [cd("a", 1.0)]);
    let mut s2 = Peer::new("s2", ns());
    s2.add_collection("cds", pdx_cds(), [cd("b", 2.0)]);
    let plan = Plan::display(
        "client#9",
        Plan::union([Plan::url("mqp://s1/"), Plan::url("mqp://s2/")]),
    );
    let mut mqp = Mqp::new(plan);
    // Hop 1: s1 (through the wire).
    let mut mqp1 = Mqp::from_wire(&mqp.to_wire()).unwrap();
    use mqp::core::Outcome;
    let out = s1.process(&mut mqp1);
    assert!(matches!(out, Outcome::Forward { .. }));
    // Hop 2: s2 (through the wire again).
    let mut mqp2 = Mqp::from_wire(&mqp1.to_wire()).unwrap();
    match s2.process(&mut mqp2) {
        Outcome::Complete { items, target } => {
            assert_eq!(items.len(), 2);
            assert_eq!(target.as_deref(), Some("client#9"));
        }
        other => panic!("expected complete, got {other:?}"),
    }
    // Provenance recorded both evaluations across serialization.
    let evaluators: Vec<&str> = mqp2
        .provenance()
        .iter()
        .filter(|v| v.action == Action::Evaluated)
        .map(|v| v.server.as_str())
        .collect();
    assert!(evaluators.contains(&"s1"));
    assert!(evaluators.contains(&"s2"));
    mqp.record(mqp2.provenance()[0].clone()); // keep mqp mutable use
}

/// Figure 4(a)'s select-through-union pushdown happens on the real
/// pipeline: after the meta server binds the ForSale URN, each seller
/// branch carries its own select.
#[test]
fn figure4a_pushdown_on_pipeline() {
    let mut meta = Peer::new("meta", ns());
    let mut s1 = Peer::new("s1", ns());
    s1.add_collection("cds", pdx_cds(), [cd("a", 5.0)]);
    let mut s2 = Peer::new("s2", ns());
    s2.add_collection("cds", pdx_cds(), [cd("b", 15.0)]);
    meta.catalog_mut().register(s1.base_entry());
    meta.catalog_mut().register(s2.base_entry());
    let plan = Plan::display(
        "c#0",
        Plan::select("price < 10", Plan::Urn(UrnRef::new(Urn::area(pdx_cds())))),
    );
    let mut mqp = Mqp::new(plan);
    let out = meta.process(&mut mqp);
    assert!(matches!(out, mqp::core::Outcome::Forward { .. }));
    // The plan now unions per-seller selects (pushdown applied).
    let selects = mqp.plan().find_all(&|p| matches!(p, Plan::Select { .. }));
    assert_eq!(selects.len(), 2, "plan:\n{}", mqp.plan());
}

/// Or-alternatives survive the wire: binding staleness annotations are
/// preserved through envelope serialization.
#[test]
fn or_staleness_round_trips_the_wire() {
    let plan = Plan::display(
        "c#0",
        Plan::Or(vec![
            OrAlt::stale(Plan::url("mqp://r/"), 30),
            OrAlt::stale(
                Plan::union([Plan::url("mqp://r/"), Plan::url("mqp://s/")]),
                0,
            ),
        ]),
    );
    let mqp = Mqp::new(plan);
    let back = Mqp::from_wire(&mqp.to_wire()).unwrap();
    match back.plan() {
        Plan::Display { input, .. } => match input.as_ref() {
            Plan::Or(alts) => {
                assert_eq!(alts[0].staleness, Some(30));
                assert_eq!(alts[1].staleness, Some(0));
            }
            other => panic!("expected or, got {other}"),
        },
        other => panic!("expected display, got {other}"),
    }
}

/// §5.2 end to end: ordering and transfer policies. The MQP must not
/// bind the preferences resource until the playlist is bound, and may
/// only pass through the two listed servers.
#[test]
fn ordering_and_transfer_policies() {
    use mqp::core::Constraints;
    let mut playlist_srv = Peer::new("playlist", ns());
    playlist_srv.add_collection(
        "pl",
        pdx_cds(),
        [Element::new("track").child(Element::new("t").text("x"))],
    );
    playlist_srv.publish_urn("urn:CD:Playlist", "pl");
    let mut prefs_srv = Peer::new("prefs", ns());
    prefs_srv.add_collection(
        "pf",
        pdx_cds(),
        [Element::new("pref").child(Element::new("t").text("x"))],
    );
    prefs_srv.publish_urn("urn:My:Preferences", "pf");

    let plan = Plan::display(
        "c#0",
        Plan::join(
            JoinCond::on("t", "t"),
            Plan::urn("urn:My:Preferences"),
            Plan::urn("urn:CD:Playlist"),
        ),
    );
    let constraints = Constraints::none()
        .allow_only(["playlist", "prefs"])
        .bind_after("urn:CD:Playlist", "urn:My:Preferences");
    let mut mqp = Mqp::new(plan).with_constraints(constraints);

    // The preferences server sees the plan first, but must not bind its
    // resource yet (ordering), so nothing is bound there.
    use mqp::core::Outcome;
    let out = prefs_srv.process(&mut mqp);
    assert_eq!(
        mqp.plan().urns().len(),
        2,
        "prefs bound too early:\n{}",
        mqp.plan()
    );
    // It cannot route anywhere it knows, so it reports stuck; the
    // client would then send to the playlist server (the allowed list
    // is what matters here).
    assert!(matches!(out, Outcome::Stuck { .. }));

    // At the playlist server the playlist binds and reduces…
    let out = playlist_srv.process(&mut mqp);
    assert!(mqp
        .provenance()
        .iter()
        .any(|v| v.action == Action::Bound && v.detail.contains("urn:CD:Playlist")));
    let _ = out;
    // …and now the preferences resource may bind.
    match prefs_srv.process(&mut mqp) {
        Outcome::Complete { items, .. } => assert_eq!(items.len(), 1),
        other => panic!("expected complete, got {other:?}"),
    }

    // Transfer policy: a disallowed route is skipped even when the
    // peer's catalog would pick it.
    let gate = Peer::new("gate", ns()).with_default_route("tracker");
    let plan = Plan::display("c#0", Plan::url("mqp://tracker/"));
    let mut locked = Mqp::new(plan).with_constraints(Constraints::none().allow_only(["gate"]));
    match gate.process(&mut locked) {
        Outcome::Stuck { .. } => {}
        other => panic!("transfer policy violated: {other:?}"),
    }
}

/// A join query across two base servers: the MQP gathers one side,
/// moves, and completes at the second — no coordinator anywhere.
#[test]
fn coordinator_free_distributed_join() {
    let mut songs = Peer::new("songs", ns());
    songs.add_collection(
        "fav",
        pdx_cds(),
        [Element::new("song").child(Element::new("album").text("X"))],
    );
    let mut shop = Peer::new("shop", ns());
    shop.add_collection("stock", pdx_cds(), [cd("X", 8.0), cd("Y", 3.0)]);
    let plan = Plan::display(
        "c#0",
        Plan::join(
            JoinCond::on("album", "title"),
            Plan::url("mqp://songs/"),
            Plan::url("mqp://shop/"),
        ),
    );
    let client = Peer::new("c", ns()).with_default_route("songs");
    let mut h = SimHarness::new(Topology::uniform(3, 2_000), vec![client, songs, shop]);
    h.submit(0, plan);
    h.run(10_000);
    let q = h.take_completed().pop().unwrap();
    assert!(q.failure.is_none(), "{:?}", q.failure);
    assert_eq!(q.items.len(), 1);
    assert_eq!(q.items[0].name(), "tuple");
}
