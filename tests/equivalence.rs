//! Host equivalence (DESIGN.md §8, §11): the deterministic simulator
//! (`SimHarness`), the real-thread cluster (`ThreadedCluster`), and the
//! real-socket cluster (`TcpCluster`) drive the *identical* sans-IO
//! `PeerNode` state machine, so for the same topology, world, and
//! fault-free workload all three must produce identical sets of
//! `QueryOutcome`s — same answers, same hop counts, same §5.1 audit
//! verdicts, same failure reasons. Only latency (virtual vs wall
//! clock) and byte totals (logical vs framed sizes) may differ.

use std::collections::BTreeMap;
use std::time::Duration;

use mqp::algebra::plan::Plan;
use mqp::core::QueryId;
use mqp::namespace::{Hierarchy, InterestArea, Namespace, Urn};
use mqp::net::Topology;
use mqp::peer::{Peer, SimHarness, TcpCluster, ThreadedCluster};
use mqp::xml::parse;

fn ns() -> Namespace {
    Namespace::new([
        Hierarchy::new("Location").with(["USA/OR/Portland", "USA/WA/Seattle"]),
        Hierarchy::new("Merchandise").with(["Music/CDs", "Furniture/Chairs"]),
    ])
}

fn area(loc: &str, cat: &str) -> InterestArea {
    InterestArea::parse(&[&[loc, cat]])
}

/// A moderately interesting world: client, meta-index, city index, and
/// four sellers across two cities and two categories. Built fresh for
/// each host so neither can leak state into the other.
fn world() -> Vec<Peer> {
    let client = Peer::new("client", ns()).with_default_route("meta");
    let mut meta = Peer::new("meta", ns());
    let mut idx = Peer::new("idx-pdx", ns());
    let mut sellers = Vec::new();
    for (i, (loc, cat, rows)) in [
        ("USA/OR/Portland", "Music/CDs", vec![("A", 8), ("B", 12)]),
        ("USA/OR/Portland", "Music/CDs", vec![("C", 9)]),
        ("USA/WA/Seattle", "Furniture/Chairs", vec![("D", 30)]),
        (
            "USA/OR/Portland",
            "Furniture/Chairs",
            vec![("E", 4), ("F", 40)],
        ),
    ]
    .into_iter()
    .enumerate()
    {
        let id = format!("seller-{i}");
        let mut s = Peer::new(id.clone(), ns());
        s.add_collection(
            "stock",
            area(loc, cat),
            rows.iter().map(|(t, p)| {
                parse(&format!(
                    "<item><title>{t}</title><price>{p}</price></item>"
                ))
                .unwrap()
            }),
        );
        // Portland sellers register with the city index; everyone with
        // the meta server.
        if loc.contains("Portland") {
            idx.catalog_mut().register(s.base_entry());
        }
        meta.catalog_mut().register(s.base_entry());
        sellers.push(s);
    }
    meta.catalog_mut().register(
        mqp::catalog::CatalogEntry::index("idx-pdx", area("USA/OR/Portland", "*")).authoritative(),
    );
    let mut peers = vec![client, meta, idx];
    peers.extend(sellers);
    peers
}

/// The shared workload: successes across both cities, a multi-seller
/// area query, a direct-URL query, and one query that gets stuck.
fn workload() -> Vec<Plan> {
    vec![
        Plan::select(
            "price < 10",
            Plan::Urn(mqp::algebra::plan::UrnRef::new(Urn::area(area(
                "USA/OR/Portland",
                "Music/CDs",
            )))),
        ),
        Plan::Urn(mqp::algebra::plan::UrnRef::new(Urn::area(area(
            "USA/WA/Seattle",
            "Furniture/Chairs",
        )))),
        Plan::select("price < 50", Plan::url("mqp://seller-3/")),
        // Nobody holds French cheese: identical stuck reason expected.
        Plan::Urn(mqp::algebra::plan::UrnRef::new(Urn::area(area(
            "USA/WA/Seattle",
            "Music/CDs",
        )))),
        Plan::or([Plan::url("mqp://seller-0/"), Plan::url("mqp://seller-1/")]),
    ]
}

/// The host-independent fingerprint of an outcome: everything except
/// latency (virtual vs wall clock) and byte totals (the simulator
/// charges logical sizes, the cluster real frame sizes).
type Fingerprint = (Option<String>, Vec<String>, u64, Option<bool>, u64);

fn fingerprint(q: &mqp::core::QueryOutcome) -> Fingerprint {
    let mut items: Vec<String> = q.items.iter().map(mqp::xml::serialize).collect();
    items.sort();
    (q.failure.clone(), items, q.hops, q.audit_clean, q.retries)
}

#[test]
fn sim_threaded_and_tcp_hosts_agree_on_every_outcome() {
    // --- simulator run ---
    let mut sim_outcomes: BTreeMap<QueryId, Fingerprint> = BTreeMap::new();
    let n = world().len();
    let mut h = SimHarness::new(Topology::uniform(n, 5_000), world());
    for plan in workload() {
        h.submit(0, plan);
        h.run(100_000);
    }
    assert_eq!(h.pending_count(), 0, "simulator stranded a query");
    for q in h.take_completed() {
        sim_outcomes.insert(q.qid, fingerprint(&q));
    }

    // --- threaded run, same world, all queries in flight at once ---
    let (cluster, mut client) = ThreadedCluster::new(world());
    let plans = workload();
    let qids: Vec<QueryId> = plans.iter().map(|p| client.submit(0, p)).collect();
    let done = client.collect(qids.len(), Duration::from_secs(30));
    cluster.shutdown(&client);
    assert_eq!(done.len(), qids.len(), "cluster lost a query");
    let thr_outcomes: BTreeMap<QueryId, Fingerprint> =
        done.iter().map(|q| (q.qid, fingerprint(q))).collect();

    // --- TCP run, same world, real sockets ---
    let (tcp, mut tcp_client) = TcpCluster::new(world());
    let tcp_qids: Vec<QueryId> = plans.iter().map(|p| tcp_client.submit(0, p)).collect();
    let tcp_done = tcp_client.collect(tcp_qids.len(), Duration::from_secs(30));
    let socket_stats = tcp.shutdown(&mut tcp_client);
    assert_eq!(tcp_done.len(), tcp_qids.len(), "tcp cluster lost a query");
    assert!(socket_stats.balances(0), "unbalanced: {socket_stats:?}");
    let tcp_outcomes: BTreeMap<QueryId, Fingerprint> =
        tcp_done.iter().map(|q| (q.qid, fingerprint(q))).collect();

    // Identical sets: same qids, and per qid the same answer items,
    // failure reason, hop count, audit verdict, and retry count —
    // across all three hosts.
    assert_eq!(sim_outcomes.len(), thr_outcomes.len());
    assert_eq!(sim_outcomes.len(), tcp_outcomes.len());
    for (qid, sim_fp) in &sim_outcomes {
        let thr_fp = thr_outcomes
            .get(qid)
            .unwrap_or_else(|| panic!("query {qid} missing from threaded run"));
        assert_eq!(sim_fp, thr_fp, "query {qid} diverged sim vs threaded");
        let tcp_fp = tcp_outcomes
            .get(qid)
            .unwrap_or_else(|| panic!("query {qid} missing from tcp run"));
        assert_eq!(sim_fp, tcp_fp, "query {qid} diverged sim vs tcp");
    }

    // The workload exercised both success and failure paths.
    assert!(sim_outcomes.values().any(|f| f.0.is_none()));
    assert!(sim_outcomes.values().any(|f| f.0.is_some()));
    assert!(sim_outcomes.values().any(|f| f.3 == Some(true)));
}

/// The two hosts also agree under repetition with many queries in
/// flight at once on the threaded side — outcome sets are stable
/// across submission interleavings because fault-free protocol state
/// is per-query.
#[test]
fn threaded_outcomes_are_stable_across_runs() {
    let run = || {
        let (cluster, mut client) = ThreadedCluster::new(world());
        let plans = workload();
        let qids: Vec<QueryId> = (0..3)
            .flat_map(|_| {
                plans
                    .iter()
                    .map(|p| client.submit(0, p))
                    .collect::<Vec<_>>()
            })
            .collect();
        let done = client.collect(qids.len(), Duration::from_secs(30));
        cluster.shutdown(&client);
        assert_eq!(done.len(), qids.len());
        let mut fps: Vec<Fingerprint> = done.iter().map(fingerprint).collect();
        fps.sort();
        fps
    };
    assert_eq!(run(), run());
}

/// The threaded and socket drivers expose the same kill/restart API
/// and drive the same recovery state machine (DESIGN.md §12): the same
/// kill/restart schedule against the same durable world yields the
/// same outcome fingerprints — answers, failure reasons, and audit
/// verdicts — before and after the power cycle. Hop and retry counts
/// are excluded: wall-clock churn timing may legitimately shift them
/// between drivers.
#[test]
fn threaded_and_tcp_agree_under_durable_kill_restart() {
    use mqp::catalog::durable::{DurableCatalog, MemDisk, SharedDisk};

    // seller-0 (node 3) journals its catalog, so kill models process
    // death — the in-memory catalog is wiped and must recover from the
    // WAL — instead of the volatile interface cut.
    fn durable_world() -> Vec<Peer> {
        let mut peers = world();
        peers[3].enable_durability(DurableCatalog::new(SharedDisk::new(MemDisk::new())));
        peers
    }
    fn relaxed(q: &mqp::core::QueryOutcome) -> (Option<String>, Vec<String>, Option<bool>) {
        let mut items: Vec<String> = q.items.iter().map(mqp::xml::serialize).collect();
        items.sort();
        (q.failure.clone(), items, q.audit_clean)
    }
    let plan = Plan::select("price < 50", Plan::url("mqp://seller-0/"));
    let settle = || std::thread::sleep(Duration::from_millis(120));

    let (cluster, mut client) = ThreadedCluster::new(durable_world());
    client.submit(0, &plan);
    let thr_before = client.collect(1, Duration::from_secs(30));
    cluster.kill(3);
    settle();
    cluster.restart(3);
    settle();
    client.submit(0, &plan);
    let thr_after = client.collect(1, Duration::from_secs(30));
    cluster.shutdown(&client);
    assert_eq!(thr_before.len(), 1, "threaded pre-churn query stranded");
    assert_eq!(thr_after.len(), 1, "threaded post-churn query stranded");

    let (tcp, mut tcp_client) = TcpCluster::new(durable_world());
    tcp_client.submit(0, &plan);
    let tcp_before = tcp_client.collect(1, Duration::from_secs(30));
    tcp.kill(3);
    settle();
    tcp.restart(3);
    settle();
    tcp_client.submit(0, &plan);
    let tcp_after = tcp_client.collect(1, Duration::from_secs(30));
    let stats = tcp.shutdown(&mut tcp_client);
    assert_eq!(tcp_before.len(), 1, "tcp pre-churn query stranded");
    assert_eq!(tcp_after.len(), 1, "tcp post-churn query stranded");
    assert!(stats.balances(0), "unbalanced: {stats:?}");

    assert_eq!(
        relaxed(&thr_before[0]),
        relaxed(&tcp_before[0]),
        "pre-churn outcomes diverged"
    );
    assert_eq!(
        relaxed(&thr_after[0]),
        relaxed(&tcp_after[0]),
        "post-churn outcomes diverged"
    );
    // And the recovered peer really answered: both cheap CDs, clean.
    let q = &thr_after[0];
    assert!(q.failure.is_none(), "{:?}", q.failure);
    let (_, items, audit) = relaxed(q);
    assert_eq!(items.len(), 2, "recovered seller must serve its stock");
    assert_eq!(audit, Some(true));
}

/// The §4.3 policy demo plan: a fresh two-site union vs a stale
/// one-site mirror of the same Portland CD stock. Under the default
/// `Policy::current()` every driver commits the union (3 items: A, B,
/// C); under a hot-loaded `when always then choose fast` rule set every
/// driver commits the cheaper single-site alternative (2 items: A, B).
fn or_plan() -> Plan {
    use mqp::algebra::plan::OrAlt;
    Plan::Or(vec![
        OrAlt {
            plan: Plan::union([Plan::url("mqp://seller-0/"), Plan::url("mqp://seller-1/")]),
            staleness: None,
        },
        OrAlt {
            plan: Plan::url("mqp://seller-0/"),
            staleness: Some(30),
        },
    ])
}

/// The rule set every hot-reload test ships, compiled from the same DSL
/// text committed as `queries/fast_fallback.mqpp`.
fn fast_rules() -> mqp::core::RuleSet {
    mqp::lang::parse_policy("when always then choose fast\n")
        .expect("policy text compiles")
        .rules
}

/// Policy hot reload changes routing behavior on all three drivers
/// without restarting anything: the same `or` query commits the union
/// before the reload and the single-site alternative after it, and the
/// accounting stays clean on every host (no stranded queries, balanced
/// socket frames).
#[test]
fn policy_hot_reload_changes_routing_on_all_three_drivers() {
    let rules = fast_rules();

    // --- simulator ---
    let n = world().len();
    let mut h = SimHarness::new(Topology::uniform(n, 5_000), world());
    let count = |h: &mut SimHarness| -> usize {
        h.submit(0, or_plan());
        h.run(100_000);
        let out = h.take_completed().pop().expect("query completed");
        assert!(
            out.failure.is_none(),
            "sim or-query failed: {:?}",
            out.failure
        );
        out.items.len()
    };
    let sim_before = count(&mut h);
    for node in 0..n {
        h.push_policy(0, node, rules.clone());
    }
    h.run(100_000);
    let sim_after = count(&mut h);
    assert_eq!(h.pending_count(), 0, "simulator stranded a query");
    assert_eq!(
        (sim_before, sim_after),
        (3, 2),
        "sim routing did not change"
    );

    // --- threaded cluster, same world and reload sequence ---
    let settle = || std::thread::sleep(Duration::from_millis(120));
    let (cluster, mut client) = ThreadedCluster::new(world());
    client.submit(0, &or_plan());
    let before = client.collect(1, Duration::from_secs(30));
    for node in 0..n {
        assert!(client.push_policy(node, &rules), "worker {node} gone");
    }
    settle();
    client.submit(0, &or_plan());
    let after = client.collect(1, Duration::from_secs(30));
    cluster.shutdown(&client);
    assert_eq!(
        (before.len(), after.len()),
        (1, 1),
        "threaded query stranded"
    );
    assert!(before[0].failure.is_none() && after[0].failure.is_none());
    assert_eq!(
        (before[0].items.len(), after[0].items.len()),
        (3, 2),
        "threaded routing did not change"
    );

    // --- TCP cluster, real sockets ---
    let (tcp, mut tcp_client) = TcpCluster::new(world());
    tcp_client.submit(0, &or_plan());
    let tcp_before = tcp_client.collect(1, Duration::from_secs(30));
    for node in 0..n {
        assert!(
            tcp_client.push_policy(node, &rules),
            "node {node} unreachable"
        );
    }
    settle();
    tcp_client.submit(0, &or_plan());
    let tcp_after = tcp_client.collect(1, Duration::from_secs(30));
    let stats = tcp.shutdown(&mut tcp_client);
    assert_eq!(
        (tcp_before.len(), tcp_after.len()),
        (1, 1),
        "tcp query stranded"
    );
    assert!(tcp_before[0].failure.is_none() && tcp_after[0].failure.is_none());
    assert_eq!(
        (tcp_before[0].items.len(), tcp_after[0].items.len()),
        (3, 2),
        "tcp routing did not change"
    );
    assert!(stats.balances(0), "unbalanced after hot reload: {stats:?}");
}

/// A policy swap while queries are in flight must not corrupt anything:
/// every query still completes exactly once with a valid answer (the
/// union's 3 items if its `or` was decided before the rules landed, the
/// single-site 2 if after), nothing strands, and the socket frame
/// accounting still balances to zero. In-flight envelopes keep their
/// meters; only the *decision* at the next processing step changes.
#[test]
fn policy_swap_mid_query_keeps_accounting_clean() {
    let rules = fast_rules();
    let n = world().len();
    let valid = |q: &mqp::core::QueryOutcome| {
        assert!(
            q.failure.is_none(),
            "mid-swap query failed: {:?}",
            q.failure
        );
        assert!(
            q.items.len() == 2 || q.items.len() == 3,
            "mid-swap query returned {} items (want the union's 3 or the \
             single-site 2)",
            q.items.len()
        );
    };

    // Simulator: the policy frames race the query through the same
    // virtual network, so the swap lands genuinely mid-flight.
    let mut h = SimHarness::new(Topology::uniform(n, 5_000), world());
    for _ in 0..3 {
        h.submit(0, or_plan());
    }
    for node in 0..n {
        h.push_policy(0, node, rules.clone());
    }
    h.run(200_000);
    assert_eq!(h.pending_count(), 0, "simulator stranded a mid-swap query");
    let done = h.take_completed();
    assert_eq!(done.len(), 3);
    done.iter().for_each(&valid);

    // Threaded: six queries in flight when the rules are pushed.
    let (cluster, mut client) = ThreadedCluster::new(world());
    let qids: Vec<QueryId> = (0..6).map(|_| client.submit(0, &or_plan())).collect();
    for node in 0..n {
        assert!(client.push_policy(node, &rules), "worker {node} gone");
    }
    let done = client.collect(qids.len(), Duration::from_secs(30));
    cluster.shutdown(&client);
    assert_eq!(
        done.len(),
        qids.len(),
        "threaded cluster lost a mid-swap query"
    );
    done.iter().for_each(&valid);

    // TCP: same interleaving over real sockets, plus the zero-balance
    // frame identity — a corrupted in-flight meter would break it.
    let (tcp, mut tcp_client) = TcpCluster::new(world());
    let qids: Vec<QueryId> = (0..6).map(|_| tcp_client.submit(0, &or_plan())).collect();
    for node in 0..n {
        assert!(
            tcp_client.push_policy(node, &rules),
            "node {node} unreachable"
        );
    }
    let done = tcp_client.collect(qids.len(), Duration::from_secs(30));
    let stats = tcp.shutdown(&mut tcp_client);
    assert_eq!(done.len(), qids.len(), "tcp cluster lost a mid-swap query");
    done.iter().for_each(&valid);
    assert!(
        stats.balances(0),
        "unbalanced after mid-query swap: {stats:?}"
    );
}

/// The multi-origin binding defense (DESIGN.md §14) is part of the
/// sans-IO `PeerNode` state machine, so the same adversarial
/// registration schedule must yield the same quarantine outcome on all
/// three drivers: the hijacker's conflicting binding draws count-probe
/// verification rounds, two strikes land it in quarantine, and the
/// contested-cell query commits an identical, poison-free answer
/// everywhere.
#[test]
fn quarantine_outcomes_agree_across_all_three_drivers() {
    use mqp::catalog::CatalogEntry;

    let cell = || area("USA/OR/Portland", "Furniture/Chairs");
    // world() peers: client(0), meta(1), idx-pdx(2, the verifier),
    // sellers 3..7; seller-3 (node 6) holds the contested cell's two
    // honest items. The mirror copies them exactly — same counts, same
    // bytes, so probes agree; the hijacker holds one divergent poisoned
    // item.
    fn defense_world() -> Vec<Peer> {
        let mut peers = world();
        peers[2].enable_defense();
        let mut mirror = Peer::new("mirror-3", ns());
        mirror.add_collection(
            "copy",
            area("USA/OR/Portland", "Furniture/Chairs"),
            [
                parse("<item><title>E</title><price>4</price></item>").unwrap(),
                parse("<item><title>F</title><price>40</price></item>").unwrap(),
            ],
        );
        let mut hijack = Peer::new("hijack-3", ns());
        hijack.add_collection(
            "loot",
            area("USA/OR/Portland", "Furniture/Chairs"),
            [parse("<item><title>X</title><price>1</price><poison>1</poison></item>").unwrap()],
        );
        peers.push(mirror);
        peers.push(hijack);
        peers
    }
    // The schedule, as (target-index, entry) waves: honest claimants
    // first (holder + mirror — the round that seeds consistent
    // history), then the hijacker twice (strike one, strike two →
    // quarantine).
    let waves: Vec<Vec<CatalogEntry>> = vec![
        vec![
            CatalogEntry::base("seller-3", cell()),
            CatalogEntry::base("mirror-3", cell()),
        ],
        vec![CatalogEntry::base("hijack-3", cell())],
        vec![CatalogEntry::base("hijack-3", cell())],
    ];
    let probe_query = || {
        Plan::Urn(mqp::algebra::plan::UrnRef::new(Urn::area(area(
            "USA/OR/Portland",
            "Furniture/Chairs",
        ))))
    };
    let check_answer = |items: &[String], driver: &str| {
        assert!(
            !items.is_empty(),
            "{driver}: contested-cell query returned nothing"
        );
        assert!(
            items.iter().all(|i| !i.contains("<poison>")),
            "{driver}: poisoned item survived quarantine: {items:?}"
        );
    };

    // --- simulator ---
    let n = defense_world().len();
    let mut h = SimHarness::new(Topology::uniform(n, 5_000), defense_world());
    for wave in &waves {
        for entry in wave {
            h.send_registration(0, 2, entry.clone());
        }
        h.run(500_000);
    }
    h.submit(0, probe_query());
    h.run(500_000);
    let out = h.take_completed().pop().expect("sim query completed");
    assert!(out.failure.is_none(), "sim: {:?}", out.failure);
    let mut sim_items: Vec<String> = out.items.iter().map(mqp::xml::serialize).collect();
    sim_items.sort();
    check_answer(&sim_items, "sim");

    // --- threaded cluster, same schedule over channels ---
    let settle = || std::thread::sleep(Duration::from_millis(200));
    let (cluster, mut client) = ThreadedCluster::new(defense_world());
    for wave in &waves {
        for entry in wave {
            assert!(client.register(2, entry), "verifier worker gone");
        }
        settle();
    }
    client.submit(0, &probe_query());
    let done = client.collect(1, Duration::from_secs(30));
    cluster.shutdown(&client);
    assert_eq!(done.len(), 1, "threaded query stranded");
    assert!(done[0].failure.is_none(), "threaded: {:?}", done[0].failure);
    let mut thr_items: Vec<String> = done[0].items.iter().map(mqp::xml::serialize).collect();
    thr_items.sort();
    check_answer(&thr_items, "threaded");

    // --- TCP cluster, same schedule over real sockets ---
    let (tcp, mut tcp_client) = TcpCluster::new(defense_world());
    for wave in &waves {
        for entry in wave {
            assert!(tcp_client.register(2, entry), "verifier unreachable");
        }
        settle();
    }
    tcp_client.submit(0, &probe_query());
    let tcp_done = tcp_client.collect(1, Duration::from_secs(30));
    let stats = tcp.shutdown(&mut tcp_client);
    assert_eq!(tcp_done.len(), 1, "tcp query stranded");
    assert!(
        tcp_done[0].failure.is_none(),
        "tcp: {:?}",
        tcp_done[0].failure
    );
    let mut tcp_items: Vec<String> = tcp_done[0].items.iter().map(mqp::xml::serialize).collect();
    tcp_items.sort();
    check_answer(&tcp_items, "tcp");
    assert!(stats.balances(0), "unbalanced after quarantine: {stats:?}");

    // Identical answers everywhere: the quarantine decision — not just
    // the query result — matched, because an unquarantined hijacker
    // would have poisoned at least one driver's answer.
    assert_eq!(sim_items, thr_items, "sim vs threaded diverged");
    assert_eq!(sim_items, tcp_items, "sim vs tcp diverged");
}

/// Same stability property on the socket host: repeated runs with the
/// whole workload tripled and in flight at once produce identical
/// outcome multisets, with exact frame accounting every time.
#[test]
fn tcp_outcomes_are_stable_across_runs() {
    let run = || {
        let (cluster, mut client) = TcpCluster::new(world());
        let plans = workload();
        let qids: Vec<QueryId> = (0..3)
            .flat_map(|_| {
                plans
                    .iter()
                    .map(|p| client.submit(0, p))
                    .collect::<Vec<_>>()
            })
            .collect();
        let done = client.collect(qids.len(), Duration::from_secs(30));
        let stats = cluster.shutdown(&mut client);
        assert_eq!(done.len(), qids.len());
        assert!(stats.balances(0), "unbalanced: {stats:?}");
        let mut fps: Vec<Fingerprint> = done.iter().map(fingerprint).collect();
        fps.sort();
        fps
    };
    assert_eq!(run(), run());
}
