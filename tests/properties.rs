//! Cross-crate property tests: the invariants DESIGN.md §5 commits to
//! that span more than one crate — reduction confluence, rewrite
//! soundness on the real evaluator, and whole-harness determinism.

use proptest::prelude::*;

use mqp::algebra::plan::{JoinCond, Plan};
use mqp::core::rewrite;
use mqp::engine::eval_const;
use mqp::xml::Element;

fn arb_items(tag: &'static str) -> impl Strategy<Value = Vec<Element>> {
    proptest::collection::vec((0u32..6, 0u32..50), 0..6).prop_map(move |rows| {
        rows.into_iter()
            .map(|(k, p)| {
                Element::new(tag)
                    .child(Element::new("k").text(k.to_string()))
                    .child(Element::new("price").text(p.to_string()))
            })
            .collect()
    })
}

/// Data-only plans over a small schema, deep enough to exercise every
/// operator the rewrites touch.
fn arb_data_plan() -> impl Strategy<Value = Plan> {
    let leaf = arb_items("i").prop_map(Plan::data);
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (0u32..50, inner.clone()).prop_map(|(c, i)| Plan::select(&format!("price < {c}"), i)),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Plan::union),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Plan::join(
                JoinCond::on("k", "k"),
                a,
                b
            )),
            inner.clone().prop_map(|i| Plan::top_n(3, "price", true, i)),
        ]
    })
}

/// Sorted serialized form: bag equality up to order.
fn bag(items: &mqp::xml::Batch) -> Vec<String> {
    let mut v: Vec<String> = items.iter().map(mqp::xml::serialize).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Normalization (select pushdown + consolidation) never changes
    /// results on the real evaluator.
    #[test]
    fn normalize_preserves_results(plan in arb_data_plan()) {
        let before = eval_const(&plan).unwrap();
        let mut rewritten = plan.clone();
        rewrite::normalize(&mut rewritten);
        let after = eval_const(&rewritten).unwrap();
        prop_assert_eq!(bag(&before), bag(&after));
    }

    /// Reduction confluence: evaluating the whole plan at once equals
    /// reducing an arbitrary evaluable sub-plan to constant data first,
    /// then evaluating the rest — the legality of §2's "reduce the MQP
    /// by evaluating a sub-graph".
    #[test]
    fn reduction_is_confluent(plan in arb_data_plan(), pick in any::<prop::sample::Index>()) {
        let direct = eval_const(&plan).unwrap();
        // Pick any sub-plan (all are evaluable: data-only world).
        let paths = plan.find_all(&|_| true);
        let path = paths[pick.index(paths.len())].clone();
        let mut reduced = plan.clone();
        let sub = reduced.get(&path).unwrap().clone();
        let sub_result = eval_const(&sub).unwrap();
        reduced.replace(&path, Plan::data_shared(sub_result)).unwrap();
        let via_reduction = eval_const(&reduced).unwrap();
        prop_assert_eq!(bag(&direct), bag(&via_reduction));
    }

    /// The MQP envelope codec round-trips any data-only plan together
    /// with provenance.
    #[test]
    fn envelope_roundtrip_data_plans(plan in arb_data_plan()) {
        let mqp = mqp::core::Mqp::new(Plan::display("c#1", plan));
        let back = mqp::core::Mqp::from_wire(&mqp.to_wire()).expect("reparse");
        prop_assert_eq!(back, mqp);
    }

    /// DESIGN.md §7: cached-fragment re-serialization is pure
    /// memoization. Under arbitrary interleavings of plan mutation,
    /// provenance appends, and wire round-trips (which seed the caches
    /// from received bytes), `to_wire()` stays byte-identical to
    /// serializing the tree form, and `wire_size()` stays exactly
    /// `to_wire().len()` — checked after *every* step, so a stale
    /// fragment anywhere shows up immediately.
    #[test]
    fn incremental_reserialization_is_byte_identical(
        plan in arb_data_plan(),
        ops in proptest::collection::vec((0u8..4, any::<prop::sample::Index>()), 0..10),
    ) {
        use mqp::catalog::ServerId;
        use mqp::core::{Action, Mqp, VisitRecord};

        let mut m = Mqp::new(Plan::display("c#1", plan));
        for (step, (op, pick)) in ops.into_iter().enumerate() {
            match op {
                // Mutate the plan through the dirty-bit path.
                0 => {
                    let paths = m.plan().find_all(&|_| true);
                    let path = paths[pick.index(paths.len())].clone();
                    let _ = m.plan_mut().replace(&path, Plan::data([]));
                }
                // Append provenance (cached fragments stay a prefix).
                1 => m.record(VisitRecord {
                    server: ServerId::new(format!("s{step}")),
                    action: Action::Rewrote,
                    detail: format!("op {step} @ {}", pick.index(97)),
                    at: step as u64,
                    staleness: (step % 7) as u32,
                }),
                // Round-trip through the wire: the canonical parser
                // seeds every section cache from the received bytes.
                2 => {
                    let wire = m.to_wire();
                    let back = Mqp::from_wire(&wire).expect("reparse");
                    prop_assert_eq!(&back, &m);
                    prop_assert_eq!(back.to_wire(), wire);
                    m = back;
                }
                // Touch the plan without changing it: invalidation must
                // be conservative, never unsound.
                _ => {
                    let _ = m.plan_mut();
                }
            }
            let full = mqp::xml::serialize(&m.to_xml());
            prop_assert_eq!(m.to_wire(), full.clone());
            prop_assert_eq!(m.wire_size(), full.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DESIGN.md invariant 6 extended to the §6 fault model: for *any*
    /// fault-plan seed and knob setting, identical `FaultPlan`s produce
    /// identical delivery traces, statistics, and clocks — loss,
    /// jitter-reordering, duplication, and churn included.
    #[test]
    fn fault_plans_are_deterministic(
        seed in 0u64..=u64::MAX,
        loss in 0u32..40,
        jitter in 0u32..30,
        dup in 0u32..25,
        crashes in 0usize..8,
    ) {
        use mqp::net::{FaultPlan, SimNet, Topology};

        let plan = FaultPlan::new(seed)
            .with_loss(f64::from(loss) / 100.0)
            .with_jitter(f64::from(jitter) / 10.0)
            .with_duplication(f64::from(dup) / 100.0)
            .with_generated_churn(&[5, 6, 7, 8, 9, 10, 11], crashes, 500_000, 50_000);
        let run = || {
            let mut net: SimNet<u32> =
                SimNet::with_faults(Topology::clustered(12, 4, 50, 3_000), plan.clone());
            // A fixed send pattern with reactive re-sends, so the trace
            // depends on delivery order too (not just the send prefix).
            for i in 0..30usize {
                net.send(i % 12, (i * 7 + 2) % 12, 10 + i, i as u32);
            }
            let mut trace = Vec::new();
            while let Some(d) = net.step() {
                if d.payload < 30 && d.payload % 5 == 0 {
                    net.send(d.to, (d.to + 1) % 12, 8, d.payload + 100);
                }
                trace.push((d.at, d.from, d.to, d.payload));
            }
            let balanced = net.stats().balances(net.in_flight());
            (trace, net.stats().clone(), net.now(), balanced)
        };
        let first = run();
        prop_assert!(first.3, "accounting identity broken");
        prop_assert_eq!(first, run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DESIGN.md §8: the sans-IO `PeerNode` never fabricates traffic,
    /// and the driver's accounting identity
    /// `sent = delivered + dropped + lost + in-flight` survives
    /// *arbitrary interleavings* of `on_message` and `on_tick` — here
    /// produced by injecting spurious extra ticks at random nodes and
    /// times into a faulty, retrying run, and checking the identity
    /// after every single delivery. A tick with nothing expired must
    /// be a pure no-op, so the extra ticks cannot change what the
    /// queries themselves do.
    #[test]
    fn node_event_interleavings_preserve_accounting(
        seed in 0u64..=u64::MAX,
        loss in 0u32..25,
        dup in 0u32..20,
        extra_ticks in proptest::collection::vec((0usize..20, 0u64..2_000_000), 0..24),
    ) {
        use mqp::net::FaultPlan;
        use mqp::peer::{RetryPolicy, SimMsg};
        use mqp::workloads::garage::{build, query_for, GarageConfig};

        let mut w = build(GarageConfig {
            sellers: 14,
            items_per_seller: 2,
            ..GarageConfig::default()
        });
        let n = w.harness.len();
        w.harness.retry = Some(RetryPolicy {
            timeout_us: 300_000,
            max_retries: 2,
        });
        w.harness.net.set_fault_plan(
            FaultPlan::new(seed)
                .with_loss(f64::from(loss) / 100.0)
                .with_jitter(0.5)
                .with_duplication(f64::from(dup) / 100.0),
        );
        // Spurious ticks: arbitrary nodes, arbitrary times. The nodes
        // have no watches armed at those instants (or watches with
        // later deadlines), so `on_tick` must emit nothing.
        for &(node, at) in &extra_ticks {
            w.harness.net.schedule(node % n, at, SimMsg::Tick);
        }
        let mut submitted = 0usize;
        for (city, cat) in [
            ("USA/OR/Portland", "Music/CDs"),
            ("USA/WA/Seattle", "Furniture/Chairs"),
            ("France/IDF/Paris", "Books/Paperbacks"),
        ] {
            w.harness.submit(w.client, query_for(city, cat, None));
            submitted += 1;
            // Step one delivery at a time so the identity is checked at
            // every instant, not just at quiescence.
            while w.harness.run(1) == 1 {
                prop_assert!(
                    w.harness.net.stats().balances(w.harness.net.in_flight()),
                    "identity broken mid-run: {:?} with {} in flight",
                    w.harness.net.stats(),
                    w.harness.net.in_flight()
                );
            }
        }
        // Every submission reached a terminal state or stranded — but
        // nothing was double-counted: completed + pending == submitted.
        prop_assert_eq!(
            w.harness.completed().len() + w.harness.pending_count(),
            submitted
        );
        prop_assert_eq!(w.harness.net.in_flight(), 0);
    }
}

/// The whole simulation harness is deterministic: identical worlds and
/// query streams yield identical outcomes, bytes, and clocks.
#[test]
fn harness_runs_are_deterministic() {
    use mqp::workloads::garage::{build, random_query, GarageConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let run = || {
        let mut w = build(GarageConfig {
            sellers: 15,
            items_per_seller: 6,
            ..GarageConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let q = random_query(&mut rng, Some(80.0));
            w.harness.submit(w.client, q);
            w.harness.run(100_000);
        }
        let outcomes: Vec<(mqp::core::QueryId, usize, u64, u64, Option<String>)> = w
            .harness
            .completed()
            .iter()
            .map(|q| (q.qid, q.items.len(), q.hops, q.mqp_bytes, q.failure.clone()))
            .collect();
        let stats = w.harness.net.stats().clone();
        (outcomes, stats.messages_sent, stats.bytes_sent)
    };
    assert_eq!(run(), run());
}

/// Baseline determinism, same idea.
#[test]
fn baseline_runs_are_deterministic() {
    use mqp::baselines::{Chord, Flooding};
    use mqp::net::Topology;

    let chord = |n: usize| {
        let mut c = Chord::new(Topology::uniform(n, 1_000));
        c.publish(1, "k1");
        c.publish(2, "k2");
        let r = c.query(0, "k1");
        (r.holders.clone(), r.messages, r.latency_us)
    };
    assert_eq!(chord(32), chord(32));

    let flood = || {
        let mut f = Flooding::new(Topology::uniform(64, 1_000), 3, 11);
        f.publish(9, "k");
        let r = f.query(0, "k", 4);
        (r.holders.clone(), r.messages, r.latency_us)
    };
    assert_eq!(flood(), flood());
}
