//! Cross-crate resilience tests: the DESIGN.md §6 fault model driven
//! through the whole stack — net, peer, core provenance, workloads —
//! under adversarial schedules.

use mqp::net::{ChurnEvent, FaultPlan, NodeId, SimNet, Topology};
use mqp::peer::RetryPolicy;
use mqp::workloads::garage::{build, query_for, GarageConfig};

/// The exact accounting identity holds at *every* instant of a faulty
/// run, not just at quiescence (ISSUE 2: "counters must sum").
#[test]
fn fault_accounting_is_exact_throughout() {
    let mut net: SimNet<u32> = SimNet::with_faults(
        Topology::clustered(12, 3, 100, 5_000),
        FaultPlan::new(21)
            .with_loss(0.25)
            .with_jitter(1.0)
            .with_duplication(0.2)
            .with_generated_churn(&[6, 7, 8, 9, 10, 11], 4, 200_000, 20_000),
    );
    for i in 0..60usize {
        net.send(i % 12, (i * 5 + 1) % 12, 40 + i, i as u32);
        assert!(
            net.stats().balances(net.in_flight()),
            "identity broken after send {i}: {:?} with {} in flight",
            net.stats(),
            net.in_flight()
        );
    }
    let mut steps = 0;
    while net.step().is_some() {
        steps += 1;
        assert!(
            net.stats().balances(net.in_flight()),
            "identity broken after delivery {steps}: {:?} with {} in flight",
            net.stats(),
            net.in_flight()
        );
    }
    let st = net.stats();
    assert_eq!(net.in_flight(), 0);
    assert!(st.messages_lost > 0, "25% loss must lose something");
    assert!(st.messages_duplicated > 0, "20% duplication must duplicate");
    assert_eq!(
        st.messages_sent,
        st.messages_delivered + st.messages_dropped + st.messages_lost
    );
}

/// A garage-sale world under loss + churn with retries: for this
/// (deterministic) schedule every submission completes — successfully
/// or with an explicit failure — and every success passes the §5.1
/// provenance audit even when it needed detours (invariant 7). (A
/// schedule that crashes a *watching* peer mid-timeout can still
/// strand its query — the liveness caveat of DESIGN.md §6; the churn
/// experiment counts those.)
#[test]
fn churned_world_completes_every_query_audit_clean() {
    let mut w = build(GarageConfig {
        sellers: 40,
        items_per_seller: 3,
        index_servers: 6,
        meta_servers: 2,
        ..GarageConfig::default()
    });
    let n = w.harness.len();
    w.harness.retry = Some(RetryPolicy {
        timeout_us: 300_000,
        max_retries: 3,
    });
    let eligible: Vec<NodeId> = (3..n).collect();
    w.harness.net.set_fault_plan(
        FaultPlan::new(11)
            .with_loss(0.05)
            .with_jitter(0.5)
            .with_generated_churn(&eligible, 12, 30_000_000, 2_000_000),
    );
    let cells = [
        ("USA/OR/Portland", "Music/CDs"),
        ("USA/WA/Seattle", "Furniture/Chairs"),
        ("USA/CA/LosAngeles", "Electronics/TV"),
        ("France/IDF/Paris", "Books/Paperbacks"),
        ("USA/OR/Portland", "Music/Vinyl"),
        ("USA/WA/Vancouver", "Electronics/VCR"),
    ];
    let mut detours = 0u64;
    for (city, cat) in cells.iter().cycle().take(18) {
        w.harness.submit(w.client, query_for(city, cat, None));
        w.harness.run(10_000_000);
        assert_eq!(
            w.harness.pending_count(),
            0,
            "query stranded with retry policy active"
        );
        let out = w.harness.take_completed().pop().expect("completed");
        detours += out.retries;
        if out.failure.is_none() {
            assert_ne!(
                out.audit_clean,
                Some(false),
                "successful query failed the provenance audit"
            );
        }
    }
    // The schedule above reliably forces at least one detour.
    assert!(detours > 0, "expected retries under churn");
    assert_eq!(w.harness.net.stats().retries, detours);
    assert!(w.harness.net.stats().balances(w.harness.net.in_flight()));
}

/// Full duplication: every message delivered twice, yet each query
/// completes exactly once and accounting still sums.
#[test]
fn duplicate_deliveries_complete_queries_once() {
    let mut w = build(GarageConfig {
        sellers: 12,
        items_per_seller: 2,
        ..GarageConfig::default()
    });
    w.harness.retry = Some(RetryPolicy::default());
    w.harness
        .net
        .set_fault_plan(FaultPlan::new(5).with_duplication(1.0));
    for (city, cat) in [
        ("USA/OR/Portland", "Music/CDs"),
        ("USA/WA/Seattle", "Furniture/Chairs"),
    ] {
        w.harness.submit(w.client, query_for(city, cat, None));
        w.harness.run(10_000_000);
    }
    let done = w.harness.take_completed();
    assert_eq!(done.len(), 2, "one completion per submission, no more");
    let st = w.harness.net.stats();
    assert!(st.messages_duplicated > 0);
    assert!(st.balances(w.harness.net.in_flight()));
    // No phantom retries: a duplicate re-completion must not leave an
    // armed watch behind, so every network-level retry is attributed
    // to some query's outcome.
    let attributed: u64 = done.iter().map(|q| q.retries).sum();
    assert_eq!(st.retries, attributed, "retry traffic for finished queries");
}

/// Churn events apply exactly at their scheduled simulated times,
/// independent of wall-clock and of how the caller interleaves sends.
#[test]
fn churn_schedule_is_clock_driven() {
    let plan = FaultPlan::new(0).with_churn(vec![
        ChurnEvent {
            at: 1_000,
            node: 1,
            up: false,
        },
        ChurnEvent {
            at: 5_000,
            node: 1,
            up: true,
        },
    ]);
    let mut net: SimNet<&'static str> = SimNet::with_faults(Topology::uniform(3, 500), plan);
    net.send(0, 1, 0, "before"); // arrives at 500: delivered
    assert_eq!(net.step().unwrap().payload, "before");
    net.send(0, 1, 0, "during"); // arrives at 1_000: crash at 1_000 wins
    assert!(net.step().is_none());
    assert!(net.is_down(1));
    // Idle until past the rejoin: a message sent at t=1_000 to node 2
    // keeps the clock honest, then node 1 answers again at 5_500.
    net.send(0, 2, 0, "tick");
    assert_eq!(net.step().unwrap().payload, "tick");
    for _ in 0..9 {
        net.send(0, 2, 0, "tick");
        net.step();
    }
    assert!(net.now() >= 5_000);
    net.send(0, 1, 0, "after");
    assert_eq!(net.step().unwrap().payload, "after");
    assert!(!net.is_down(1));
}

/// The same fault seed drives the same behavior through the *whole*
/// stack: byte-identical query outcomes, stats, and clocks.
#[test]
fn faulty_harness_runs_are_byte_identical() {
    let run = || {
        let mut w = build(GarageConfig {
            sellers: 25,
            items_per_seller: 3,
            ..GarageConfig::default()
        });
        let n = w.harness.len();
        w.harness.retry = Some(RetryPolicy {
            timeout_us: 250_000,
            max_retries: 2,
        });
        let eligible: Vec<NodeId> = (3..n).collect();
        w.harness.net.set_fault_plan(
            FaultPlan::new(33)
                .with_loss(0.1)
                .with_jitter(1.0)
                .with_duplication(0.05)
                .with_generated_churn(&eligible, 8, 20_000_000, 1_000_000),
        );
        for (city, cat) in [
            ("USA/OR/Portland", "Music/CDs"),
            ("USA/WA/Seattle", "Furniture/Chairs"),
            ("France/IDF/Paris", "Books/Paperbacks"),
            ("USA/CA/SanFrancisco", "Electronics/TV"),
        ] {
            w.harness
                .submit(w.client, query_for(city, cat, Some(120.0)));
            w.harness.run(10_000_000);
        }
        let outcomes: Vec<_> = w
            .harness
            .take_completed()
            .into_iter()
            .map(|q| {
                (
                    q.qid,
                    q.items.len(),
                    q.hops,
                    q.mqp_bytes,
                    q.retries,
                    q.latency_us,
                    q.failure,
                    q.audit_clean,
                )
            })
            .collect();
        (outcomes, w.harness.net.stats().clone(), w.harness.net.now())
    };
    assert_eq!(run(), run());
}
