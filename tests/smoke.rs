//! Workspace smoke test: the facade's public API round-trips an MQP
//! exactly as the `src/lib.rs` doc-test does. Doc-tests are skipped by
//! `cargo test -q --tests` and by some CI configurations, so this
//! integration test guarantees facade re-export breakage (a renamed
//! crate, a dropped `pub use`, a changed signature) still fails the
//! plain test run.

use mqp::algebra::plan::Plan;
use mqp::core::Mqp;

#[test]
fn facade_wire_roundtrip_matches_doc_test() {
    // Build the Figure-3 style plan: select cheap CDs from an abstract
    // resource, display the answer back to the client.
    let plan = Plan::display(
        "client#0",
        Plan::select("price < 10", Plan::urn("urn:ForSale:Portland-CDs")),
    );

    // Serialize it as a travelling mutant query plan…
    let wire = Mqp::new(plan).to_wire();
    assert!(wire.starts_with("<mqp>"));

    // …and any peer can parse it back and keep mutating it.
    let back = Mqp::from_wire(&wire).unwrap();
    assert_eq!(back.plan().urns().len(), 1);
}

#[test]
fn facade_re_exports_every_component_crate() {
    // One symbol per re-exported crate: if a `pub use` disappears from
    // src/lib.rs, this stops compiling.
    let _ = mqp::algebra::plan::Plan::data(vec![]);
    let _ = mqp::baselines::fnv1a("key");
    let _ = mqp::catalog::Preference::Current;
    let _ = mqp::core::Policy::current();
    let _ = mqp::engine::NoResolver;
    let _ = mqp::namespace::Urn::named("CD", "TrackListings");
    let _ = mqp::net::Topology::uniform(2, 1_000);
    let _ = mqp::peer::SimHarness::new(mqp::net::Topology::uniform(0, 1_000), vec![]);
    let _ = mqp::workloads::garage::GarageConfig::default();
    let _ = mqp::xml::Element::new("item");
}
