//! A vendored, dependency-free stand-in for `criterion`, exposing the
//! subset of the 0.5 API that `crates/bench/benches/micro.rs` uses:
//! `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a warm-up pass, then a timed
//! batch sized to the warm-up rate — because this environment has no
//! crates.io access and the workspace needs `cargo bench` to produce
//! useful numbers, not publication-grade statistics.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    /// Mean wall-clock time per iteration from the measured batch.
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`: warm-up for ~20ms to estimate the rate, then one
    /// measured batch of at least that many iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const WARMUP: Duration = Duration::from_millis(20);
        const MEASURE: Duration = Duration::from_millis(80);

        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP {
            std_black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;
        let batch = (MEASURE.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64;

        let start = Instant::now();
        for _ in 0..batch {
            std_black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean = elapsed / batch as u32;
        self.iters = batch;
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn report(name: &str, mean: Duration, iters: u64, throughput: Option<Throughput>) {
    let extra = match throughput {
        Some(Throughput::Bytes(b)) if mean.as_nanos() > 0 => {
            let gib = b as f64 / mean.as_secs_f64() / (1u64 << 30) as f64;
            format!("  {gib:.3} GiB/s")
        }
        Some(Throughput::Elements(e)) if mean.as_nanos() > 0 => {
            let meps = e as f64 / mean.as_secs_f64() / 1e6;
            format!("  {meps:.3} Melem/s")
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} time: {:>12}  ({iters} iters){extra}",
        human(mean)
    );
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a named benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.mean,
            b.iters,
            self.throughput,
        );
        self
    }

    /// Runs a named benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.mean,
            b.iters,
            self.throughput,
        );
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(id, b.mean, b.iters, None);
        self
    }
}

/// Declares a group-runner function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
