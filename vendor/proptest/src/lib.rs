//! A vendored, dependency-free stand-in for `proptest`, implementing the
//! generate-only subset of the 1.x API this workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! regex-subset string strategies, numeric-range strategies, tuples,
//! `collection::vec`, `option::of`, `sample::select`, `sample::Index`,
//! `any`, `Just`, `prop_oneof!`, and the `proptest!` runner macro with
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! There is **no shrinking**: a failing case panics with the generated
//! input in the assertion message (every generator here is seeded
//! deterministically per case index, so failures reproduce exactly).

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

// Re-exported so the `proptest!` expansion can name the RNG through
// `$crate` from crates that do not themselves depend on `rand`.
#[doc(hidden)]
pub use rand;

/// Strategies for collections (subset: `vec`).
pub mod collection {
    use crate::strategy::{SizeBounds, Strategy, VecStrategy};

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
        let SizeBounds { min, max } = size.into();
        VecStrategy { element, min, max }
    }
}

/// Strategies for `Option` (subset: `of`).
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy for `Option<S::Value>`, generating `Some` three times
    /// out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling strategies (subset: `select`, `Index`).
pub mod sample {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy drawing uniformly from a fixed set of options.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice among `options`. Panics on an empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select requires options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// An index into a collection whose length is only known at use
    /// time; `index(len)` maps it uniformly into `0..len`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) usize);

    impl Index {
        /// Maps this sample into `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

/// String strategies (subset: `string_regex` over a regex sub-language
/// of concatenated literals and character classes with `{m,n}` counts).
pub mod string {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Error from [`string_regex`] on a pattern outside the supported
    /// sub-language.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One quantified atom: a set of candidate chars and a repeat range.
    #[derive(Debug, Clone)]
    pub(crate) struct Part {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// A compiled pattern.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        parts: Vec<Part>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for part in &self.parts {
                let n = rng.gen_range(part.min..=part.max);
                for _ in 0..n {
                    out.push(part.chars[rng.gen_range(0..part.chars.len())]);
                }
            }
            out
        }
    }

    /// Compiles `pattern` (concatenation of `[class]` / literal atoms,
    /// each optionally followed by `{m}` or `{m,n}`) into a generator.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut parts = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars, pattern)?,
                '\\' => vec![chars
                    .next()
                    .ok_or_else(|| Error(format!("{pattern}: dangling escape")))?],
                '{' | '}' | ']' | '*' | '+' | '?' | '|' | '(' | ')' => {
                    return Err(Error(format!("{pattern}: unsupported metachar {c:?}")))
                }
                lit => vec![lit],
            };
            let (min, max) = parse_count(&mut chars, pattern)?;
            parts.push(Part {
                chars: set,
                min,
                max,
            });
        }
        Ok(RegexGeneratorStrategy { parts })
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Result<Vec<char>, Error> {
        let mut set = Vec::new();
        loop {
            let c = match chars.next() {
                Some(']') => break,
                Some('\\') => chars
                    .next()
                    .ok_or_else(|| Error(format!("{pattern}: dangling escape")))?,
                Some(c) => c,
                None => return Err(Error(format!("{pattern}: unterminated class"))),
            };
            // `a-z` range, unless `-` is the last char before `]`.
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next();
                if ahead.peek().is_some_and(|&n| n != ']') {
                    chars.next(); // consume '-'
                    let end = match chars.next() {
                        Some('\\') => chars
                            .next()
                            .ok_or_else(|| Error(format!("{pattern}: dangling escape")))?,
                        Some(e) => e,
                        None => return Err(Error(format!("{pattern}: unterminated range"))),
                    };
                    if end < c {
                        return Err(Error(format!("{pattern}: inverted range {c}-{end}")));
                    }
                    set.extend(c..=end);
                    continue;
                }
            }
            set.push(c);
        }
        if set.is_empty() {
            return Err(Error(format!("{pattern}: empty class")));
        }
        Ok(set)
    }

    fn parse_count(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Result<(usize, usize), Error> {
        if chars.peek() != Some(&'{') {
            return Ok((1, 1));
        }
        chars.next();
        let mut body = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse()
                            .map_err(|_| Error(format!("{pattern}: bad count")))?,
                        hi.parse()
                            .map_err(|_| Error(format!("{pattern}: bad count")))?,
                    ),
                    None => {
                        let n = body
                            .parse()
                            .map_err(|_| Error(format!("{pattern}: bad count")))?;
                        (n, n)
                    }
                };
                if max < min {
                    return Err(Error(format!("{pattern}: inverted count")));
                }
                return Ok((min, max));
            }
            body.push(c);
        }
        Err(Error(format!("{pattern}: unterminated count")))
    }
}

/// Values with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

impl Arbitrary for sample::Index {
    type Strategy = strategy::AnyIndex;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyIndex
    }
}

/// Everything a property-test module needs, plus the `prop` crate alias.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The conventional `prop::` alias for the crate root.
    pub use crate as prop;
}
