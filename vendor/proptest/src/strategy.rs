//! The [`Strategy`] trait and combinators: `Just`, ranges, string
//! literals, tuples, vectors, options, unions, map, recursion, boxing.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree and no shrinking — a
/// strategy is just a deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// the previous depth level and wraps it one level deeper. `depth`
    /// bounds the recursion; the size hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let leaf = base.clone();
            let deeper = recurse(strat).boxed();
            // At every level: 1-in-4 stop early at a leaf, else recurse,
            // so generated structures mix all depths up to `depth`.
            strat = BoxedStrategy::from_fn(move |rng| {
                if rng.gen_range(0..4u32) == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        strat
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    pub(crate) fn from_fn(f: impl Fn(&mut StdRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.gen)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.arms[rng.gen_range(0..self.arms.len())].generate(rng)
    }
}

/// Selects uniformly among heterogeneous strategies with a common value
/// type. Equal weights; arms are evaluated once.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

// ---- Numeric ranges ----------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- Strings -----------------------------------------------------------

/// A `&str` is a regex-subset pattern (see [`crate::string`]); invalid
/// patterns panic at first generation with the compile error. Compiled
/// patterns are cached per thread — recursive strategies hit the same
/// handful of literals thousands of times per property.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        thread_local! {
            static COMPILED: std::cell::RefCell<
                std::collections::HashMap<String, Rc<crate::string::RegexGeneratorStrategy>>,
            > = std::cell::RefCell::new(std::collections::HashMap::new());
        }
        let compiled = COMPILED.with(|cache| {
            Rc::clone(
                cache
                    .borrow_mut()
                    .entry(self.to_string())
                    .or_insert_with(|| {
                        Rc::new(
                            crate::string::string_regex(self)
                                .unwrap_or_else(|e| panic!("bad string strategy {self:?}: {e}")),
                        )
                    }),
            )
        });
        compiled.generate(rng)
    }
}

// ---- Built-in `any` strategies -----------------------------------------

/// `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

/// `any::<sample::Index>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyIndex;

impl Strategy for AnyIndex {
    type Value = crate::sample::Index;
    fn generate(&self, rng: &mut StdRng) -> crate::sample::Index {
        crate::sample::Index(rng.gen_range(0..usize::MAX))
    }
}

// ---- Tuples ------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident.$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// ---- Collections -------------------------------------------------------

/// Inclusive length bounds for [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeBounds {
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl From<Range<usize>> for SizeBounds {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeBounds {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeBounds {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeBounds {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeBounds {
    fn from(n: usize) -> Self {
        SizeBounds { min: n, max: n }
    }
}

/// [`crate::collection::vec`] strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.min..=self.max);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// [`crate::option::of`] strategy.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_range(0..4u32) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
