//! The `proptest!` runner: per-case seeded RNGs, a case-count config,
//! and panic-based `prop_assert*` macros (no shrinking).

/// Runner configuration (subset: `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derives the deterministic RNG seed for one test case. Public for the
/// `proptest!` expansion only.
#[doc(hidden)]
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index, so every
    // property sees an independent, reproducible stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Declares property tests: each `fn name(bindings in strategies)`
/// becomes a `#[test]` running `config.cases` seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..config.cases {
                let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::test_runner::case_seed(stringify!($name), __case),
                );
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics, aborting the run).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}
