//! A vendored, dependency-free stand-in for the `rand` crate, exposing
//! exactly the subset of the 0.8 API this workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool, gen}`, and
//! `seq::SliceRandom::shuffle`.
//!
//! The generator is the public-domain xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms, which is what the
//! reproducibility harness (tests/properties.rs) relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly like rand's `seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples a value of a [`Standard`]-distributable type.
    fn gen<T: StandardDist>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardDist {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDist for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, bound)` by rejection from the top of the word,
/// avoiding modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (subset: `shuffle` only).
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Fisher–Yates shuffle, matching `rand::seq::SliceRandom::shuffle`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20i32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=3u32);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
